package mlkit

import "sort"

// Confusion is a k×k confusion matrix; Confusion[actual][predicted].
type Confusion struct {
	K     int
	Cells [][]int
}

// NewConfusion builds an empty k-class matrix.
func NewConfusion(k int) *Confusion {
	cells := make([][]int, k)
	for i := range cells {
		cells[i] = make([]int, k)
	}
	return &Confusion{K: k, Cells: cells}
}

// Add records one (actual, predicted) observation.
func (c *Confusion) Add(actual, predicted int) {
	if actual < 0 || actual >= c.K || predicted < 0 || predicted >= c.K {
		return
	}
	c.Cells[actual][predicted]++
}

// Total returns the number of recorded observations.
func (c *Confusion) Total() int {
	t := 0
	for _, row := range c.Cells {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// Accuracy is the overall fraction correct — the weighted TP rate the
// paper quotes (82.9%).
func (c *Confusion) Accuracy() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < c.K; i++ {
		correct += c.Cells[i][i]
	}
	return float64(correct) / float64(t)
}

// classStats computes one-vs-rest tp/fp/fn/tn for class k.
func (c *Confusion) classStats(k int) (tp, fp, fn, tn int) {
	for a := 0; a < c.K; a++ {
		for p := 0; p < c.K; p++ {
			v := c.Cells[a][p]
			switch {
			case a == k && p == k:
				tp += v
			case a != k && p == k:
				fp += v
			case a == k && p != k:
				fn += v
			default:
				tn += v
			}
		}
	}
	return
}

// support returns the number of actual instances of class k.
func (c *Confusion) support(k int) int {
	s := 0
	for p := 0; p < c.K; p++ {
		s += c.Cells[k][p]
	}
	return s
}

// PrecisionByClass returns per-class precision.
func (c *Confusion) PrecisionByClass() []float64 {
	out := make([]float64, c.K)
	for k := 0; k < c.K; k++ {
		tp, fp, _, _ := c.classStats(k)
		if tp+fp > 0 {
			out[k] = float64(tp) / float64(tp+fp)
		}
	}
	return out
}

// RecallByClass returns per-class recall (TP rate).
func (c *Confusion) RecallByClass() []float64 {
	out := make([]float64, c.K)
	for k := 0; k < c.K; k++ {
		tp, _, fn, _ := c.classStats(k)
		if tp+fn > 0 {
			out[k] = float64(tp) / float64(tp+fn)
		}
	}
	return out
}

// FPRateByClass returns per-class one-vs-rest false-positive rates.
func (c *Confusion) FPRateByClass() []float64 {
	out := make([]float64, c.K)
	for k := 0; k < c.K; k++ {
		_, fp, _, tn := c.classStats(k)
		if fp+tn > 0 {
			out[k] = float64(fp) / float64(fp+tn)
		}
	}
	return out
}

// weightedAverage weights per-class values by class support, the Weka
// convention the paper's §5.4 numbers follow.
func (c *Confusion) weightedAverage(vals []float64) float64 {
	total := c.Total()
	if total == 0 {
		return 0
	}
	sum := 0.0
	for k, v := range vals {
		sum += v * float64(c.support(k))
	}
	return sum / float64(total)
}

// WeightedPrecision returns support-weighted precision.
func (c *Confusion) WeightedPrecision() float64 {
	return c.weightedAverage(c.PrecisionByClass())
}

// WeightedRecall returns support-weighted recall (= the weighted TP rate).
func (c *Confusion) WeightedRecall() float64 {
	return c.weightedAverage(c.RecallByClass())
}

// WeightedFPRate returns support-weighted FP rate.
func (c *Confusion) WeightedFPRate() float64 {
	return c.weightedAverage(c.FPRateByClass())
}

// AUCROC computes the one-vs-rest area under the ROC curve for class k
// from per-instance scores (probability of class k) and actual labels,
// via the Mann–Whitney U statistic with tie correction.
func AUCROC(scores []float64, labels []int, k int) float64 {
	type sl struct {
		s   float64
		pos bool
	}
	items := make([]sl, 0, len(scores))
	nPos, nNeg := 0, 0
	for i, s := range scores {
		pos := labels[i] == k
		if pos {
			nPos++
		} else {
			nNeg++
		}
		items = append(items, sl{s, pos})
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	sort.Slice(items, func(i, j int) bool { return items[i].s < items[j].s })
	// Average ranks with tie handling.
	rankSumPos := 0.0
	i := 0
	for i < len(items) {
		j := i
		for j < len(items) && items[j].s == items[i].s {
			j++
		}
		avgRank := float64(i+j+1) / 2 // ranks are 1-based: (i+1 + j) / 2
		for t := i; t < j; t++ {
			if items[t].pos {
				rankSumPos += avgRank
			}
		}
		i = j
	}
	u := rankSumPos - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg))
}

// WeightedAUCROC averages one-vs-rest AUCs weighted by class support,
// given per-instance full probability vectors.
func WeightedAUCROC(probs [][]float64, labels []int, classes int) float64 {
	if len(probs) == 0 {
		return 0.5
	}
	support := make([]int, classes)
	for _, l := range labels {
		if l >= 0 && l < classes {
			support[l]++
		}
	}
	scores := make([]float64, len(probs))
	total, sum := 0, 0.0
	for k := 0; k < classes; k++ {
		if support[k] == 0 {
			continue
		}
		for i, p := range probs {
			scores[i] = p[k]
		}
		sum += AUCROC(scores, labels, k) * float64(support[k])
		total += support[k]
	}
	if total == 0 {
		return 0.5
	}
	return sum / float64(total)
}

// Report bundles the §5.4 headline metrics.
type Report struct {
	Accuracy  float64 // weighted TP rate
	FPRate    float64
	Precision float64
	Recall    float64
	AUCROC    float64
	Confusion *Confusion
}

// Evaluate scores a classifier (via predict and proba callbacks) on a
// test set and assembles the paper's metric bundle.
func Evaluate(X [][]float64, y []int, classes int,
	predict func([]float64) int, proba func([]float64) []float64) Report {
	cm := NewConfusion(classes)
	probs := make([][]float64, len(X))
	for i, x := range X {
		cm.Add(y[i], predict(x))
		probs[i] = proba(x)
	}
	return assembleReport(cm, probs, y, classes)
}

// EvaluateInto is Evaluate for Into-style classifiers: probaInto fills
// a caller-owned row of length classes. The probability matrix is one
// backing allocation instead of one slice per test row (the rows must
// stay distinct — AUC reads them all after the loop), which is what
// makes cross-validation ride the flat predictor without per-row
// garbage.
func EvaluateInto(X [][]float64, y []int, classes int,
	predict func([]float64) int, probaInto func(dst, x []float64)) Report {
	cm := NewConfusion(classes)
	backing := make([]float64, len(X)*classes)
	probs := make([][]float64, len(X))
	for i, x := range X {
		cm.Add(y[i], predict(x))
		row := backing[i*classes : (i+1)*classes]
		probaInto(row, x)
		probs[i] = row
	}
	return assembleReport(cm, probs, y, classes)
}

func assembleReport(cm *Confusion, probs [][]float64, y []int, classes int) Report {
	return Report{
		Accuracy:  cm.Accuracy(),
		FPRate:    cm.WeightedFPRate(),
		Precision: cm.WeightedPrecision(),
		Recall:    cm.WeightedRecall(),
		AUCROC:    WeightedAUCROC(probs, y, classes),
		Confusion: cm,
	}
}
