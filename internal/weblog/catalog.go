// Package weblog models the paper's dataset D: a year-long HTTP weblog of
// mobile users (1,594 users, 2015, 373M requests at full scale) and the
// RTB impressions embedded in it. Since the original proxy logs are
// proprietary, the package synthesizes a trace with the same statistical
// structure by driving the internal/rtb auction simulator per impression:
// every nURL in the trace is the output of a simulated second-price
// auction whose ground-truth charge price is retained for evaluation.
package weblog

import (
	"fmt"

	"yourandvalue/internal/iab"
)

// Property is what a user visits: a mobile website or a mobile app
// (paper §4.4 distinguishes the two; apps draw ≈2.6× prices).
type Property struct {
	// Domain is the site hostname, or the app's API hostname for apps.
	Domain string
	// App is the application bundle name; empty for websites.
	App string
	// Category is the property's IAB tier-1 content category.
	Category iab.Category
	// Popularity rank (0 = most popular) drives Zipfian traffic.
	Rank int
}

// IsApp reports whether the property is a mobile application.
func (p Property) IsApp() bool { return p.App != "" }

// Catalog is the set of properties the synthetic population browses.
type Catalog struct {
	Sites []Property
	Apps  []Property
	dir   *iab.Directory
}

// catalogCategories spreads properties over the 18 content categories the
// paper's dataset spans (Table 3: "IAB categories 18"), weighted toward
// the popular ones so the Figure 11 revenue mix has mass everywhere.
var catalogCategories = []iab.Category{
	iab.ArtsEntertainment, iab.Automotive, iab.Business, iab.Careers,
	iab.Education, iab.FamilyParenting, iab.HealthFitness, iab.FoodDrink,
	iab.HobbiesInterests, iab.HomeGarden, iab.News, iab.PersonalFinance,
	iab.Science, iab.Sports, iab.StyleFashion, iab.TechnologyComputing,
	iab.Travel, iab.Shopping,
}

// NewCatalog builds a deterministic catalog of nSites websites and nApps
// mobile apps, registering every property in an iab.Directory so the
// analyzer-side category lookups agree with generation-side truth.
func NewCatalog(nSites, nApps int) *Catalog {
	c := &Catalog{dir: iab.NewDirectory(nil)}
	for i := 0; i < nSites; i++ {
		cat := catalogCategories[i%len(catalogCategories)]
		dom := fmt.Sprintf("site%03d.example.es", i)
		c.dir.Add(dom, cat)
		c.Sites = append(c.Sites, Property{Domain: dom, Category: cat, Rank: i})
	}
	for i := 0; i < nApps; i++ {
		cat := catalogCategories[(i*5+2)%len(catalogCategories)]
		dom := fmt.Sprintf("api.app%03d.example.com", i)
		app := fmt.Sprintf("com.example.app%03d", i)
		c.dir.Add(dom, cat)
		c.Apps = append(c.Apps, Property{Domain: dom, App: app, Category: cat, Rank: i})
	}
	return c
}

// Directory returns the category directory covering every property, for
// use by the analyzer's interest inference.
func (c *Catalog) Directory() *iab.Directory { return c.dir }

// CategoryCount returns the number of distinct categories present.
func (c *Catalog) CategoryCount() int {
	seen := map[iab.Category]bool{}
	for _, p := range c.Sites {
		seen[p.Category] = true
	}
	for _, p := range c.Apps {
		seen[p.Category] = true
	}
	return len(seen)
}
