package weblog

import (
	"fmt"

	"yourandvalue/internal/stats"
	"yourandvalue/internal/useragent"
)

// Population parameterizes the synthetic user base: the device/OS mix,
// the whale share, bot-traffic contamination, and the traffic-shape
// latents each user is drawn with. The zero value is invalid; start
// from DefaultPopulation. Scenarios (internal/scenario) select
// populations by name — the generator itself only sees this struct.
type Population struct {
	// OS mix shares; normalized over their sum when users are drawn.
	AndroidShare float64 `json:"android_share"`
	IOSShare     float64 `json:"ios_share"`
	WindowsShare float64 `json:"windows_share"`
	OtherOSShare float64 `json:"other_os_share"`

	// TabletShare is the fraction of users on tablets rather than
	// smartphones.
	TabletShare float64 `json:"tablet_share"`

	// WhaleShare is the fraction of users whose value multiplier is
	// re-drawn 8–40× (paper §6.2's ~2%).
	WhaleShare float64 `json:"whale_share"`

	// BotShare is the fraction of the population that is automated
	// traffic: headless fetchers with many short sessions, negligible
	// app usage, and a heavily discounted (but nonzero — the DMPs have
	// not caught them) advertiser value. Zero in the paper's world.
	BotShare float64 `json:"bot_share"`

	// SessionsMu and SessionsSigma parameterize the log-normal
	// per-user browsing-session rate (sessions/day).
	SessionsMu    float64 `json:"sessions_mu"`
	SessionsSigma float64 `json:"sessions_sigma"`

	// AppAffinityBase and AppAffinitySpan bound the per-user probability
	// that a session happens in an app: affinity ∈ [Base, Base+Span).
	AppAffinityBase float64 `json:"app_affinity_base"`
	AppAffinitySpan float64 `json:"app_affinity_span"`
}

// DefaultPopulation reproduces the paper's dataset-D population: the
// Figure 8 OS mix (Android ≈2× iOS), 18% tablets, 2% whales, no bots,
// and a median session rate of ≈0.30/day.
func DefaultPopulation() Population {
	return Population{
		AndroidShare: 0.62, IOSShare: 0.31, WindowsShare: 0.05, OtherOSShare: 0.02,
		TabletShare:     0.18,
		WhaleShare:      0.02,
		SessionsMu:      -1.2,
		SessionsSigma:   0.9,
		AppAffinityBase: 0.30,
		AppAffinitySpan: 0.50,
	}
}

// Validate rejects populations no generator can draw from.
func (p Population) Validate() error {
	for _, s := range []struct {
		name string
		v    float64
	}{
		{"android_share", p.AndroidShare}, {"ios_share", p.IOSShare},
		{"windows_share", p.WindowsShare}, {"other_os_share", p.OtherOSShare},
		{"tablet_share", p.TabletShare}, {"whale_share", p.WhaleShare},
		{"bot_share", p.BotShare},
	} {
		if s.v < 0 || s.v > 1 {
			return fmt.Errorf("weblog: population %s %v out of [0,1]", s.name, s.v)
		}
	}
	if p.AndroidShare+p.IOSShare+p.WindowsShare+p.OtherOSShare <= 0 {
		return fmt.Errorf("weblog: population OS mix sums to zero")
	}
	if p.SessionsSigma < 0 {
		return fmt.Errorf("weblog: negative sessions sigma")
	}
	if p.AppAffinityBase < 0 || p.AppAffinitySpan < 0 || p.AppAffinityBase+p.AppAffinitySpan > 1 {
		return fmt.Errorf("weblog: app affinity range [%v, %v] out of [0,1]",
			p.AppAffinityBase, p.AppAffinityBase+p.AppAffinitySpan)
	}
	return nil
}

// sampleOS draws an OS from the mix via a cumulative walk, consuming
// exactly one uniform draw like the historical hardcoded thresholds
// (r < 0.62 Android, < 0.93 iOS, < 0.98 Windows) did. The recomputed
// cumulative sums can sit one ulp off those literals, so equivalence
// with the pre-scenario generator is distributional, not bitwise.
func (p Population) sampleOS(rng *stats.Rand) useragent.OS {
	total := p.AndroidShare + p.IOSShare + p.WindowsShare + p.OtherOSShare
	r := rng.Float64() * total
	switch {
	case r < p.AndroidShare:
		return useragent.Android
	case r < p.AndroidShare+p.IOSShare:
		return useragent.IOS
	case r < p.AndroidShare+p.IOSShare+p.WindowsShare:
		return useragent.WindowsMobile
	default:
		return useragent.OSOther
	}
}
