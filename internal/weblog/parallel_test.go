package weblog

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"yourandvalue/internal/useragent"
)

// TestGenerateParallelDeterminism is the determinism contract of the
// sharded generator: the same seed and scenario produce a bit-identical
// trace — users, requests, impression ground truth and symbol table —
// at ANY worker count. Run under -race in CI, it also proves the
// workers share no mutable state.
func TestGenerateParallelDeterminism(t *testing.T) {
	base := smallConfig(31)
	var ref *Trace
	for _, workers := range []int{1, 4, 7} {
		cfg := base
		cfg.Workers = workers
		tr := Generate(cfg)
		if ref == nil {
			ref = tr
			continue
		}
		if !reflect.DeepEqual(tr.Users, ref.Users) {
			t.Fatalf("workers=%d: population differs from serial", workers)
		}
		if !reflect.DeepEqual(tr.Requests, ref.Requests) {
			t.Fatalf("workers=%d: requests differ from serial (%d vs %d records)",
				workers, len(tr.Requests), len(ref.Requests))
		}
		if !reflect.DeepEqual(tr.Impressions, ref.Impressions) {
			t.Fatalf("workers=%d: impression truth differs from serial", workers)
		}
		if !reflect.DeepEqual(tr.Symbols, ref.Symbols) {
			t.Fatalf("workers=%d: symbol tables differ from serial", workers)
		}
	}
}

// TestGenerateStreamParallelOrderAndError: the parallel driver yields
// users strictly in id order, and a failing yield stops generation with
// the callee's error without deadlocking the workers.
func TestGenerateStreamParallelOrderAndError(t *testing.T) {
	cfg := smallConfig(9)
	cfg.Workers = 4

	next := 0
	if err := GenerateStream(cfg, nil, func(ut UserTrace) error {
		if ut.User.ID != next {
			t.Fatalf("yield out of order: got user %d, want %d", ut.User.ID, next)
		}
		next++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if next == 0 {
		t.Fatal("no users yielded")
	}

	wantErr := errors.New("stop")
	calls := 0
	err := GenerateStream(cfg, nil, func(UserTrace) error {
		calls++
		return wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if calls != 1 {
		t.Fatalf("yield called %d times after error, want 1", calls)
	}
}

// TestGenerateWorkersClamp: worker counts beyond the population and
// below 1 both behave (serial fallback / clamp), still deterministically.
func TestGenerateWorkersClamp(t *testing.T) {
	cfg := smallConfig(12)
	ref := Generate(cfg)
	for _, workers := range []int{-3, 0, 1, 1000} {
		cfg.Workers = workers
		tr := Generate(cfg)
		if !reflect.DeepEqual(tr.Requests, ref.Requests) {
			t.Fatalf("workers=%d diverges", workers)
		}
	}
}

// TestPopulationValidate covers the scenario-facing validation surface.
func TestPopulationValidate(t *testing.T) {
	if err := DefaultPopulation().Validate(); err != nil {
		t.Fatalf("default population invalid: %v", err)
	}
	bad := DefaultPopulation()
	bad.BotShare = 1.5
	if bad.Validate() == nil {
		t.Error("bot share > 1 accepted")
	}
	bad = DefaultPopulation()
	bad.AndroidShare, bad.IOSShare, bad.WindowsShare, bad.OtherOSShare = 0, 0, 0, 0
	if bad.Validate() == nil {
		t.Error("all-zero OS mix accepted")
	}
	bad = DefaultPopulation()
	bad.AppAffinityBase, bad.AppAffinitySpan = 0.8, 0.5
	if bad.Validate() == nil {
		t.Error("app affinity range past 1 accepted")
	}
	bad = DefaultPopulation()
	bad.SessionsSigma = -1
	if bad.Validate() == nil {
		t.Error("negative sessions sigma accepted")
	}
	// Generate surfaces the validation error.
	cfg := smallConfig(1)
	cfg.Population = &bad
	if err := GenerateStream(cfg, nil, func(UserTrace) error { return nil }); err == nil {
		t.Error("GenerateStream accepted an invalid population")
	}
}

// TestBotPopulation: a bot-heavy population marks bots, gives them heavy
// session rates, near-zero app usage and discounted value.
func TestBotPopulation(t *testing.T) {
	pop := DefaultPopulation()
	pop.BotShare = 0.3
	cfg := DefaultConfig().Scaled(0.15)
	cfg.Seed = 21
	cfg.Population = &pop
	tr := Generate(cfg)

	bots, humans := 0, 0
	var botSessions, humanSessions float64
	for _, u := range tr.Users {
		if u.Bot {
			bots++
			botSessions += u.SessionsPerDay
			if u.AppAffinity > 0.1 {
				t.Fatalf("bot %d has app affinity %v", u.ID, u.AppAffinity)
			}
		} else {
			humans++
			humanSessions += u.SessionsPerDay
		}
	}
	share := float64(bots) / float64(len(tr.Users))
	if share < 0.2 || share > 0.4 {
		t.Errorf("bot share = %v, want ≈0.3", share)
	}
	if botSessions/float64(bots) <= 2*humanSessions/float64(humans) {
		t.Error("bots should browse much more than humans")
	}
}

// TestMobileHeavyPopulation: an OS mix override shifts the generated
// population accordingly.
func TestMobileHeavyPopulation(t *testing.T) {
	pop := DefaultPopulation()
	pop.AndroidShare, pop.IOSShare, pop.WindowsShare, pop.OtherOSShare = 0.85, 0.13, 0.01, 0.01
	pop.AppAffinityBase, pop.AppAffinitySpan = 0.6, 0.35
	cfg := DefaultConfig().Scaled(0.15)
	cfg.Seed = 22
	cfg.Population = &pop
	tr := Generate(cfg)

	android := 0
	for _, u := range tr.Users {
		if u.OS == useragent.Android {
			android++
		}
		if u.AppAffinity < 0.6 {
			t.Fatalf("user %d app affinity %v below configured base", u.ID, u.AppAffinity)
		}
	}
	if share := float64(android) / float64(len(tr.Users)); share < 0.75 {
		t.Errorf("android share = %v under a 0.85 mix", share)
	}
}

// BenchmarkGenerateParallel measures the sharded generator at 1/4/8
// workers over the same seed; the 4-worker run is the acceptance
// criterion's ≥2× speedup checkpoint.
func BenchmarkGenerateParallel(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := DefaultConfig().Scaled(0.1)
			cfg.Seed = 42
			cfg.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr := Generate(cfg)
				if len(tr.Requests) == 0 {
					b.Fatal("empty trace")
				}
			}
		})
	}
}
