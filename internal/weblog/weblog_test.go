package weblog

import (
	"errors"
	"reflect"
	"sort"
	"testing"

	"yourandvalue/internal/detect"
	"yourandvalue/internal/geoip"
	"yourandvalue/internal/nurl"
	"yourandvalue/internal/stats"
	"yourandvalue/internal/useragent"
)

// smallConfig keeps unit tests fast (~2% of paper scale).
func smallConfig(seed int64) Config {
	c := DefaultConfig().Scaled(0.02)
	c.Seed = seed
	return c
}

func TestCatalog(t *testing.T) {
	c := NewCatalog(50, 20)
	if len(c.Sites) != 50 || len(c.Apps) != 20 {
		t.Fatalf("catalog sizes %d/%d", len(c.Sites), len(c.Apps))
	}
	for _, p := range c.Sites {
		if p.IsApp() {
			t.Error("site flagged as app")
		}
		if got := c.Directory().Lookup(p.Domain); got != p.Category {
			t.Errorf("directory disagrees for %s: %v vs %v", p.Domain, got, p.Category)
		}
	}
	for _, p := range c.Apps {
		if !p.IsApp() {
			t.Error("app not flagged")
		}
	}
	if n := c.CategoryCount(); n != 18 {
		t.Errorf("category count = %d, want 18 (Table 3)", n)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallConfig(5))
	b := Generate(smallConfig(5))
	if len(a.Requests) != len(b.Requests) || len(a.Impressions) != len(b.Impressions) {
		t.Fatalf("sizes differ: %d/%d vs %d/%d",
			len(a.Requests), len(a.Impressions), len(b.Requests), len(b.Impressions))
	}
	for i := range a.Impressions {
		if a.Impressions[i].NURL != b.Impressions[i].NURL {
			t.Fatal("impression streams differ under same seed")
		}
	}
	c := Generate(smallConfig(6))
	if len(c.Impressions) == len(a.Impressions) && len(c.Requests) == len(a.Requests) {
		// Extremely unlikely to match exactly under a different seed.
		t.Error("different seeds produced identical trace sizes")
	}
}

func TestImpressionVolumeNearTarget(t *testing.T) {
	cfg := smallConfig(1)
	tr := Generate(cfg)
	got := float64(tr.RTBCount())
	want := float64(cfg.Impressions)
	if got < want*0.7 || got > want*1.3 {
		t.Errorf("impressions = %v, want ≈%v", got, want)
	}
}

func TestRequestsOrderedAndWellFormed(t *testing.T) {
	tr := Generate(smallConfig(2))
	if len(tr.Requests) == 0 {
		t.Fatal("empty trace")
	}
	for i, r := range tr.Requests {
		if i > 0 && r.Time.Before(tr.Requests[i-1].Time) {
			t.Fatal("requests not time-ordered")
		}
		if r.Time.Year() != tr.Year {
			t.Fatalf("request outside trace year: %v", r.Time)
		}
		if r.Host == "" || r.URL == "" || r.UserAgent == "" || r.ClientIP == "" {
			t.Fatalf("incomplete request %+v", r)
		}
		if r.Bytes < 0 || r.DurationMS < 0 {
			t.Fatalf("negative accounting %+v", r)
		}
		if r.UserID < 0 || r.UserID >= len(tr.Users) {
			t.Fatalf("bad user id %d", r.UserID)
		}
	}
}

func TestNURLsParseable(t *testing.T) {
	tr := Generate(smallConfig(3))
	reg := nurl.Default()
	for _, imp := range tr.Impressions {
		n, ok := reg.Parse(imp.NURL)
		if !ok {
			t.Fatalf("impression nURL unparseable: %s", imp.NURL)
		}
		if imp.Encrypted != (n.Kind == nurl.Encrypted) {
			t.Fatalf("encryption flag mismatch for %s", imp.NURL)
		}
		if !imp.Encrypted {
			if diff := n.PriceCPM - imp.ChargeCPM; diff > 1e-3 || diff < -1e-3 {
				t.Fatalf("cleartext price %v != truth %v", n.PriceCPM, imp.ChargeCPM)
			}
		}
		if imp.ChargeCPM <= 0 {
			t.Fatal("non-positive ground-truth charge")
		}
	}
}

func TestUserPopulationShape(t *testing.T) {
	cfg := DefaultConfig().Scaled(0.3) // larger sample for stable shares
	cfg.Seed = 4
	tr := Generate(cfg)

	android, ios := 0, 0
	whales := 0
	cityCounts := map[geoip.City]int{}
	for _, u := range tr.Users {
		switch u.OS {
		case useragent.Android:
			android++
		case useragent.IOS:
			ios++
		}
		if u.ValueMultiplier > 8 {
			whales++
		}
		cityCounts[u.City]++
		if !u.City.Valid() {
			t.Fatalf("user %d has invalid city", u.ID)
		}
		if u.SessionsPerDay <= 0 || u.AppAffinity < 0.3 || u.AppAffinity > 0.8 {
			t.Fatalf("user traits out of range: %+v", u)
		}
	}
	// Android ≈ 2× iOS (Figure 8); wide band for the small sample.
	ratio := float64(android) / float64(ios)
	if ratio < 1.4 || ratio > 2.8 {
		t.Errorf("android/ios user ratio = %v, want ≈2", ratio)
	}
	// ~2% whales (±1.5 points).
	wf := float64(whales) / float64(len(tr.Users))
	if wf < 0.005 || wf > 0.05 {
		t.Errorf("whale fraction = %v, want ≈0.02", wf)
	}
	// Madrid should be the most common home city.
	for c, n := range cityCounts {
		if c != geoip.Madrid && n > cityCounts[geoip.Madrid] {
			t.Errorf("city %v (%d users) outnumbers Madrid (%d)", c, n, cityCounts[geoip.Madrid])
		}
	}
}

// TestMakeUsersOSDistribution checks the OS mix at large N where binomial
// noise is negligible: Android ≈2× iOS (Figures 8–9).
func TestMakeUsersOSDistribution(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Users = 20000
	users := makeUsers(cfg, DefaultPopulation(), stats.NewRand(17))
	counts := map[useragent.OS]int{}
	for _, u := range users {
		counts[u.OS]++
	}
	ratio := float64(counts[useragent.Android]) / float64(counts[useragent.IOS])
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("android/ios = %v at N=20000, want ≈2", ratio)
	}
	if counts[useragent.WindowsMobile] == 0 || counts[useragent.OSOther] == 0 {
		t.Error("minor OSes absent")
	}
}

func TestEncryptedShareGrowsInTrace(t *testing.T) {
	cfg := DefaultConfig().Scaled(0.1)
	cfg.Seed = 9
	tr := Generate(cfg)
	encByHalf := [2]int{}
	totByHalf := [2]int{}
	for _, imp := range tr.Impressions {
		h := 0
		if imp.Month > 6 {
			h = 1
		}
		totByHalf[h]++
		if imp.Encrypted {
			encByHalf[h]++
		}
	}
	s1 := float64(encByHalf[0]) / float64(totByHalf[0])
	s2 := float64(encByHalf[1]) / float64(totByHalf[1])
	if s2 <= s1 {
		t.Errorf("encrypted share should grow: H1 %.3f, H2 %.3f", s1, s2)
	}
	overall := float64(encByHalf[0]+encByHalf[1]) / float64(totByHalf[0]+totByHalf[1])
	if overall < 0.10 || overall > 0.45 {
		t.Errorf("overall encrypted share = %.3f, want ≈0.26 (§2.4)", overall)
	}
}

func TestAppPricesHigher(t *testing.T) {
	cfg := DefaultConfig().Scaled(0.1)
	cfg.Seed = 10
	tr := Generate(cfg)
	var app, web []float64
	for _, imp := range tr.Impressions {
		if imp.Ctx.Origin == useragent.MobileApp {
			app = append(app, imp.ChargeCPM)
		} else {
			web = append(web, imp.ChargeCPM)
		}
	}
	ma, _ := stats.Mean(app)
	mw, _ := stats.Mean(web)
	if ma/mw < 1.5 {
		t.Errorf("app/web mean price ratio = %v, want ≈2.6 (§4.4)", ma/mw)
	}
}

func TestScaled(t *testing.T) {
	c := DefaultConfig()
	s := c.Scaled(0.1)
	if s.Users != 159 || s.Impressions != 7856 {
		t.Errorf("scaled = %d users / %d imps", s.Users, s.Impressions)
	}
	// Out-of-range factors clamp instead of silently returning the
	// unscaled config: f <= 0 collapses to the minimum population...
	for _, f := range []float64{0, -1} {
		if bad := c.Scaled(f); bad.Users != 10 || bad.Impressions != 100 {
			t.Errorf("Scaled(%v) = %d users / %d imps, want minimum 10/100",
				f, bad.Users, bad.Impressions)
		}
	}
	// ...and f > 1 clamps to full (f = 1) scale.
	for _, f := range []float64{1, 2, 1000} {
		if full := c.Scaled(f); full.Users != c.Users || full.Impressions != c.Impressions {
			t.Errorf("Scaled(%v) = %d users / %d imps, want full %d/%d",
				f, full.Users, full.Impressions, c.Users, c.Impressions)
		}
	}
	tiny := c.Scaled(0.0001)
	if tiny.Users < 10 || tiny.Impressions < 100 {
		t.Error("scaling floor violated")
	}
}

// TestGenerateStreamMatchesGenerate: the incremental per-user emission
// path must reproduce the batch trace bit-for-bit — same users, and the
// concatenation of every yielded block must stable-sort into exactly
// Generate's request and impression streams.
func TestGenerateStreamMatchesGenerate(t *testing.T) {
	cfg := DefaultConfig().Scaled(0.01)
	cfg.Seed = 23
	batch := Generate(cfg)

	var users []User
	var reqs []Request
	var imps []ImpressionTruth
	if err := GenerateStream(cfg, nil, func(ut UserTrace) error {
		users = append(users, ut.User)
		for i := 1; i < len(ut.Requests); i++ {
			if ut.Requests[i].Time.Before(ut.Requests[i-1].Time) {
				t.Fatalf("user %d requests not time-sorted", ut.User.ID)
			}
		}
		reqs = append(reqs, ut.Requests...)
		imps = append(imps, ut.Impressions...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].Time.Before(reqs[j].Time) })
	sort.SliceStable(imps, func(i, j int) bool { return imps[i].Ctx.Time.Before(imps[j].Ctx.Time) })

	if !reflect.DeepEqual(users, batch.Users) {
		t.Fatal("streamed population differs from batch population")
	}
	if !reflect.DeepEqual(reqs, batch.Requests) {
		t.Fatalf("streamed requests differ from batch (%d vs %d records)",
			len(reqs), len(batch.Requests))
	}
	if !reflect.DeepEqual(imps, batch.Impressions) {
		t.Fatal("streamed impression truth differs from batch")
	}
}

// TestGenerateStreamStopsOnYieldError: a failing yield aborts generation
// immediately with the callee's error.
func TestGenerateStreamStopsOnYieldError(t *testing.T) {
	cfg := DefaultConfig().Scaled(0.01)
	wantErr := errors.New("stop")
	calls := 0
	err := GenerateStream(cfg, nil, func(UserTrace) error {
		calls++
		return wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if calls != 1 {
		t.Fatalf("yield called %d times after error, want 1", calls)
	}
}

func TestHostOf(t *testing.T) {
	cases := map[string]string{
		"http://a.b.c/path?q=1": "a.b.c",
		"http://a.b.c?q=1":      "a.b.c",
		"http://a.b.c":          "a.b.c",
		"a.b.c/x":               "a.b.c",
	}
	for in, want := range cases {
		if got := hostOf(in); got != want {
			t.Errorf("hostOf(%q) = %q", in, got)
		}
	}
}

func TestMonthIndex(t *testing.T) {
	if monthIndex(2015, 1) != 1 || monthIndex(2015, 12) != 12 {
		t.Error("2015 months")
	}
	if monthIndex(2016, 5) != 17 {
		t.Error("2016 offset")
	}
}

func TestIsLeap(t *testing.T) {
	for y, want := range map[int]bool{2015: false, 2016: true, 2000: true, 1900: false} {
		if isLeap(y) != want {
			t.Errorf("isLeap(%d) = %v", y, !want)
		}
	}
}

// TestInternedViewsCoherent pins the interned-record contract: every
// symbol a generated trace carries must round-trip through the trace's
// SymbolTable back to exactly the string view beside it, for requests
// (hosts, agents, addresses) and impression ground truth (ad entities,
// publishers) alike. Consumers key caches and evaluation joins by these
// dense ids, so a drift between the two views would corrupt silently.
func TestInternedViewsCoherent(t *testing.T) {
	cfg := DefaultConfig().Scaled(0.01)
	cfg.Seed = 17
	trace := Generate(cfg)
	if trace.Symbols == nil {
		t.Fatal("trace carries no symbol table")
	}
	syms := trace.Symbols
	webAgents, appAgents := 0, 0
	for _, r := range trace.Requests {
		if r.HostSym == detect.None {
			t.Fatalf("request host not interned: %+v", r)
		}
		if syms.Hosts.String(r.HostSym) != r.Host {
			t.Fatalf("request host views diverged: %+v", r)
		}
		// Shared web agents are interned; per-user in-app agents and
		// client addresses deliberately are not (bounded-memory
		// streaming contract).
		if r.AgentSym != detect.None {
			webAgents++
			if syms.Agents.String(r.AgentSym) != r.UserAgent {
				t.Fatalf("request agent views diverged: %+v", r)
			}
		} else {
			appAgents++
		}
		if r.AddrSym != detect.None {
			t.Fatalf("client address unexpectedly interned: %+v", r)
		}
	}
	if webAgents == 0 || appAgents == 0 {
		t.Fatalf("agent interning split degenerate: %d web, %d app", webAgents, appAgents)
	}
	if got, limit := syms.Agents.Len(), 12; got > limit {
		t.Errorf("agent namespace grew past the bounded web-UA vocabulary: %d > %d", got, limit)
	}
	for _, it := range trace.Impressions {
		if syms.Names.String(it.ADXSym) != it.ADX ||
			syms.Names.String(it.DSPSym) != it.DSP {
			t.Fatalf("impression ad-entity views diverged: %+v", it)
		}
		if pub := syms.Hosts.String(it.PublisherSym); pub != it.Ctx.Publisher {
			t.Fatalf("impression publisher %q != context publisher %q", pub, it.Ctx.Publisher)
		}
	}
	// The same symbols must be live in the streaming form: a request
	// host interned by GenerateStream resolves identically.
	if got := syms.Hosts.Lookup(trace.Requests[0].Host); got != trace.Requests[0].HostSym {
		t.Fatalf("lookup disagrees with the emitted symbol: %d vs %d", got, trace.Requests[0].HostSym)
	}
}
