package weblog

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"yourandvalue/internal/detect"
	"yourandvalue/internal/geoip"
	"yourandvalue/internal/nurl"
	"yourandvalue/internal/rtb"
	"yourandvalue/internal/stats"
	"yourandvalue/internal/useragent"
)

// Config sizes a synthetic trace. The zero value is invalid; use
// DefaultConfig (full paper scale) or DefaultConfig().Scaled(f).
type Config struct {
	Seed int64
	// Users is the population size; the paper's D has 1,594.
	Users int
	// Impressions is the target number of RTB price notifications; the
	// paper's D carries 78,560.
	Impressions int
	// Sites and Apps size the browsing catalog.
	Sites, Apps int
	// Year of the trace; D spans 2015.
	Year int
	// BackgroundPerSession is the mean number of non-ad third-party
	// requests logged per browsing session.
	BackgroundPerSession float64
	// Ecosystem overrides the default RTB simulator when non-nil.
	Ecosystem *rtb.Ecosystem
	// Population overrides the default user-base mix when non-nil.
	Population *Population
	// Workers is the number of users generated concurrently; values
	// below 2 generate serially. Because every user draws from their own
	// keyed RNG substream, the emitted trace is bit-identical at any
	// worker count — Workers trades memory (a bounded reorder window of
	// ~2×Workers user traces) for wall-clock speed only.
	Workers int
}

// DefaultConfig reproduces the paper's dataset-D scale.
func DefaultConfig() Config {
	return Config{
		Seed:                 1,
		Users:                1594,
		Impressions:          78560,
		Sites:                300,
		Apps:                 150,
		Year:                 2015,
		BackgroundPerSession: 2.5,
	}
}

// Scaled returns a copy with the population and impression volume scaled
// by f, for fast tests and benchmarks. f is clamped into (0, 1]: factors
// above 1 run at full scale (f = 1) and non-positive factors collapse to
// the minimum population (10 users / 100 impressions), so an out-of-range
// factor never silently returns the unscaled full-size config.
func (c Config) Scaled(f float64) Config {
	f = min(max(f, 0), 1)
	c.Users = max(int(float64(c.Users)*f), 10)
	c.Impressions = max(int(float64(c.Impressions)*f), 100)
	return c
}

// Normalized returns the configuration Generate actually runs: a config
// without a positive population falls back to DefaultConfig wholesale
// (the historical contract), and zero Year/Sites/Apps take their
// defaults. Normalized is idempotent and does not touch Ecosystem,
// Population or Workers.
func (c Config) Normalized() Config {
	if c.Users <= 0 || c.Impressions <= 0 {
		eco, pop, workers := c.Ecosystem, c.Population, c.Workers
		c = DefaultConfig()
		c.Ecosystem, c.Population, c.Workers = eco, pop, workers
	}
	if c.Year == 0 {
		c.Year = 2015
	}
	if c.Sites <= 0 {
		c.Sites = 300
	}
	if c.Apps <= 0 {
		c.Apps = 150
	}
	return c
}

// population resolves the configured population (default when nil).
func (c Config) population() Population {
	if c.Population != nil {
		return *c.Population
	}
	return DefaultPopulation()
}

// diurnal weights the hour-of-day at which sessions start.
var diurnal = [24]float64{
	1.0, 0.5, 0.3, 0.2, 0.3, 0.6, 1.2, 2.2, 3.0, 3.4, 3.5, 3.4,
	3.0, 3.0, 2.6, 2.6, 3.0, 3.4, 4.0, 4.4, 4.4, 3.8, 2.8, 1.8,
}

// Third-party background hosts, keyed to the default traffic-class lists.
var (
	cdnHosts       = []string{"cdn.gstatic.com", "img.akamaihd.net", "assets.cloudfront.net", "code.jquery.com"}
	analyticsHosts = []string{"www.google-analytics.com", "b.scorecardresearch.com", "pixel.quantserve.com"}
	socialHosts    = []string{"connect.facebook.net", "platform.twitter.com", "widgets.pinterest.com"}
	syncHosts      = []string{"sync.adnxs.com", "pixel.rubiconproject.com", "sync.mathtag.com", "cm.turn.com", "us-ads.openx.net"}
)

// Generate materializes a synthetic year-long trace per the config. The
// result is deterministic in Config.Seed at any Config.Workers count.
// Generate is the batch form of GenerateStream: it accumulates every
// user's records and applies the global time sort.
func Generate(cfg Config) *Trace {
	cfg = cfg.Normalized()
	catalog := NewCatalog(cfg.Sites, cfg.Apps)
	trace := &Trace{Catalog: catalog, Year: cfg.Year}
	err := GenerateStream(cfg, catalog, func(ut UserTrace) error {
		trace.Users = append(trace.Users, ut.User)
		trace.Requests = append(trace.Requests, ut.Requests...)
		trace.Impressions = append(trace.Impressions, ut.Impressions...)
		trace.Symbols = ut.Symbols
		return nil
	})
	if err != nil {
		// The yield above never fails, so the only possible error is an
		// invalid Config.Population — programmer error on this
		// error-less batch API. Fail loudly rather than hand every
		// downstream stage a silently empty trace.
		panic("weblog: " + err.Error())
	}
	// Each user's records arrive pre-sorted, so the stable global sort
	// keeps generation order within a user on ties, and users keep their
	// relative id order across equal timestamps.
	sort.SliceStable(trace.Requests, func(i, j int) bool {
		return trace.Requests[i].Time.Before(trace.Requests[j].Time)
	})
	sort.SliceStable(trace.Impressions, func(i, j int) bool {
		return trace.Impressions[i].Ctx.Time.Before(trace.Impressions[j].Ctx.Time)
	})
	return trace
}

// UserTrace is one user's complete year of traffic as GenerateStream
// emits it: requests stable-sorted by time (matching the user's relative
// record order in the fully sorted batch trace) together with the
// generator-side ground truth behind their RTB impressions. The slices
// are owned by the callee. Symbols is the trace-wide interner behind the
// records' dense ids — frozen before generation starts, so the same
// table instance is complete on every yield.
type UserTrace struct {
	User        User
	Requests    []Request
	Impressions []ImpressionTruth
	Symbols     *detect.SymbolTable
}

// GenerateStream is the incremental form of Generate: it synthesizes the
// same trace user by user, calling yield once per user (in user-id
// order) with that user's complete traffic, so peak memory stays bounded
// by the reorder window's worth of user records instead of the whole
// population's. cat overrides the browsing catalog when non-nil (it must
// be a NewCatalog of the config's sizes); nil builds one. A non-nil
// error from yield stops generation and is returned.
//
// Determinism contract: every user draws from their own keyed RNG
// substream — NewSubstream(seed, userID) for traffic and an auction
// Session keyed the same way for impressions — and the interned-symbol
// vocabulary is frozen before generation starts. Each user's trace is
// therefore derivable in isolation, and the emitted stream (hence
// Generate's sorted batch trace) is bit-identical for a given
// (seed, scenario) at ANY Config.Workers count. internal/weblog's
// parallel determinism test pins this under -race.
func GenerateStream(cfg Config, cat *Catalog, yield func(UserTrace) error) error {
	cfg = cfg.Normalized()
	pop := cfg.population()
	if err := pop.Validate(); err != nil {
		return err
	}
	rng := stats.NewRand(cfg.Seed)
	eco := cfg.Ecosystem
	if eco == nil {
		eco = rtb.NewEcosystem(rtb.EcosystemConfig{Seed: cfg.Seed + 1})
	}
	if cat == nil {
		cat = NewCatalog(cfg.Sites, cfg.Apps)
	}

	users := makeUsers(cfg, pop, rng)

	// Auction probability per session calibrated so the expected RTB
	// impression count meets the target.
	days := 365
	if isLeap(cfg.Year) {
		days = 366
	}
	expectedSessions := 0.0
	for _, u := range users {
		expectedSessions += u.SessionsPerDay * float64(days)
	}
	adRate := float64(cfg.Impressions) / expectedSessions // may exceed 1

	shared := &sharedGen{
		cfg:      cfg,
		eco:      eco,
		catalog:  cat,
		syms:     preinternVocab(cat, eco),
		siteZipf: stats.NewZipf(1.15, len(cat.Sites)),
		appZipf:  stats.NewZipf(1.15, len(cat.Apps)),
		adRate:   adRate,
		days:     days,
		start:    time.Date(cfg.Year, 1, 1, 0, 0, 0, 0, time.UTC),
	}

	gen := func(u *User) UserTrace {
		g := &userGen{
			sharedGen: shared,
			rng:       stats.NewSubstream(cfg.Seed, uint64(u.ID)),
			ses: eco.NewSubstreamSession(cfg.Seed+1, uint64(u.ID),
				fmt.Sprintf("u%04d-", u.ID)),
		}
		g.user(u)
		sort.SliceStable(g.reqs, func(i, j int) bool {
			return g.reqs[i].Time.Before(g.reqs[j].Time)
		})
		sort.SliceStable(g.imps, func(i, j int) bool {
			return g.imps[i].Ctx.Time.Before(g.imps[j].Ctx.Time)
		})
		return UserTrace{User: *u, Requests: g.reqs, Impressions: g.imps, Symbols: shared.syms}
	}

	workers := cfg.Workers
	if workers > len(users) {
		workers = len(users)
	}
	if workers < 2 {
		for ui := range users {
			if err := yield(gen(&users[ui])); err != nil {
				return err
			}
		}
		return nil
	}
	return generateParallel(users, workers, gen, yield)
}

// generateParallel is the sharded driver: workers generate users
// concurrently while the emitter yields them strictly in user order
// through a bounded reorder ring, so memory stays bounded by ~2×workers
// user traces and the yield sequence is identical to the serial path.
func generateParallel(users []User, workers int,
	gen func(*User) UserTrace, yield func(UserTrace) error) error {
	window := workers * 2
	ring := make([]chan UserTrace, window)
	for i := range ring {
		ring[i] = make(chan UserTrace, 1)
	}
	sem := make(chan struct{}, window) // in-flight (dispatched, un-yielded) users
	done := make(chan struct{})
	jobs := make(chan int)

	// Dispatcher: hands out user indices in order, never running more
	// than `window` ahead of the emitter. That bound is what makes the
	// ring slots single-writer: by the time user i+window is dispatched,
	// user i's slot has been consumed.
	go func() {
		defer close(jobs)
		for i := range users {
			select {
			case sem <- struct{}{}:
			case <-done:
				return
			}
			select {
			case jobs <- i:
			case <-done:
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				ut := gen(&users[i])
				select {
				case ring[i%window] <- ut:
				case <-done:
					return
				}
			}
		}()
	}

	var err error
	for i := range users {
		ut := <-ring[i%window]
		if err = yield(ut); err != nil {
			break
		}
		<-sem
	}
	close(done)
	wg.Wait()
	return err
}

// sharedGen is the read-only state every worker shares: the config, the
// ecosystem (immutable roster/market/adoption), the catalog, the frozen
// symbol table, and the popularity tables. Nothing here is written
// during generation.
type sharedGen struct {
	cfg      Config
	eco      *rtb.Ecosystem
	catalog  *Catalog
	syms     *detect.SymbolTable
	siteZipf *stats.Zipf
	appZipf  *stats.Zipf
	adRate   float64
	days     int
	start    time.Time
}

// userGen generates exactly one user's year of traffic from that user's
// private RNG substream and auction session.
type userGen struct {
	*sharedGen
	rng  *stats.Rand
	ses  *rtb.Session
	reqs []Request
	imps []ImpressionTruth
}

// user synthesizes the full year for u.
func (g *userGen) user(u *User) {
	webUA := useragent.Build(useragent.Spec{
		OS: u.OS, Type: u.Device, Origin: useragent.MobileWeb,
	})
	appUA := useragent.Build(useragent.Spec{
		OS: u.OS, Type: u.Device, Origin: useragent.MobileApp,
		App: fmt.Sprintf("com.user%04d.app", u.ID),
	})
	for day := 0; day < g.days; day++ {
		n := g.rng.Poisson(u.SessionsPerDay)
		for s := 0; s < n; s++ {
			hour := g.rng.WeightedChoice(diurnal[:])
			ts := g.start.Add(time.Duration(day)*24*time.Hour +
				time.Duration(hour)*time.Hour +
				time.Duration(g.rng.Intn(3600))*time.Second)
			inApp := g.rng.Float64() < u.AppAffinity
			var prop Property
			var ua string
			if inApp {
				prop = g.catalog.Apps[g.appZipf.Sample(g.rng)]
				ua = appUA
			} else {
				prop = g.catalog.Sites[g.siteZipf.Sample(g.rng)]
				ua = webUA
			}
			g.session(u, ts, prop, ua, inApp)
		}
	}
}

func (g *userGen) emit(r Request) { g.reqs = append(g.reqs, r) }

// request emits one record with its interned views. The symbol table is
// frozen before generation, so these are pure lookups — only strings
// from bounded vocabularies (hosts, shared web user agents) carry
// symbols; per-user-unique strings (the com.userNNNN.app UA, the client
// IP) stay string-typed, as interning them would grow the table linearly
// with users and break the bounded-memory streaming contract.
func (g *userGen) request(u *User, ts time.Time, rawURL, host, ua string, inApp bool, meanBytes float64) {
	r := Request{
		Time: ts, UserID: u.ID, URL: rawURL, Host: host,
		UserAgent: ua, ClientIP: u.IP,
		Bytes:      int64(g.rng.LogNormalMeanStd(meanBytes, meanBytes)),
		DurationMS: g.rng.LogNormalMeanStd(180, 150),
		HostSym:    g.syms.Hosts.Lookup(host),
	}
	if !inApp {
		r.AgentSym = g.syms.Agents.Lookup(ua)
	}
	g.emit(r)
}

// session emits the request cluster of one browsing session: the page (or
// app API call), background third-party traffic, occasional cookie syncs
// and beacons, and — with probability adRate — an RTB auction whose nURL
// lands in the trace.
func (g *userGen) session(u *User, ts time.Time, prop Property, ua string, inApp bool) {
	rng := g.rng
	pageURL := "http://" + prop.Domain + "/"
	if prop.IsApp() {
		pageURL = "http://" + prop.Domain + "/v1/feed"
	}
	g.request(u, ts, pageURL, prop.Domain, ua, inApp, 24000)

	nBg := rng.Poisson(g.cfg.BackgroundPerSession)
	for i := 0; i < nBg; i++ {
		ts = ts.Add(time.Duration(50+rng.Intn(400)) * time.Millisecond)
		var host, path string
		switch rng.Intn(4) {
		case 0:
			host, path = analyticsHosts[rng.Intn(len(analyticsHosts))], "/collect?v=1&t=pageview"
		case 1:
			host, path = socialHosts[rng.Intn(len(socialHosts))], "/plugins/like.php"
		default:
			host, path = cdnHosts[rng.Intn(len(cdnHosts))], fmt.Sprintf("/static/a%d.js", rng.Intn(50))
		}
		g.request(u, ts, "http://"+host+path, host, ua, inApp, 8000)
	}

	// Cookie synchronization: a pair of ad hosts exchanging the user's ID.
	if rng.Float64() < 0.10 {
		h1 := syncHosts[rng.Intn(len(syncHosts))]
		h2 := syncHosts[rng.Intn(len(syncHosts))]
		ts = ts.Add(80 * time.Millisecond)
		g.request(u, ts, fmt.Sprintf("http://%s/getuid?user_id=%s", h1, u.SyncID), h1, ua, inApp, 400)
		if h2 != h1 {
			ts = ts.Add(40 * time.Millisecond)
			g.request(u, ts, fmt.Sprintf("http://%s/usersync?user_id=%s&redir=http%%3A%%2F%%2F%s%%2Fmatch", h2, u.SyncID, h1), h2, ua, inApp, 400)
		}
	}
	if rng.Float64() < 0.10 {
		h := syncHosts[rng.Intn(len(syncHosts))]
		ts = ts.Add(60 * time.Millisecond)
		g.request(u, ts, "http://"+h+"/px.gif?r="+fmt.Sprint(rng.Intn(1<<30)), h, ua, inApp, 43)
	}

	// RTB auctions for this session's ad slots.
	k := int(g.adRate)
	if rng.Float64() < g.adRate-float64(k) {
		k++
	}
	for i := 0; i < k; i++ {
		ts = ts.Add(time.Duration(100+rng.Intn(300)) * time.Millisecond)
		g.auction(u, ts, prop, ua, inApp)
	}
}

func (g *userGen) auction(u *User, ts time.Time, prop Property, ua string, inApp bool) {
	month := int(ts.Month())
	origin := useragent.MobileWeb
	if prop.IsApp() {
		origin = useragent.MobileApp
	}
	ctx := rtb.Context{
		Time:      ts,
		City:      u.City,
		OS:        u.OS,
		Device:    u.Device,
		Origin:    origin,
		Publisher: prop.Domain,
		Category:  prop.Category,
		Slot:      rtb.SampleSlot(month, g.rng.WeightedChoice),
		UserValue: u.ValueMultiplier,
		Year2016:  g.cfg.Year >= 2016,
	}
	res, ok := g.ses.Serve(ctx, monthIndex(g.cfg.Year, month))
	if !ok {
		return
	}
	host := hostOf(res.NURL)
	g.request(u, ts, res.NURL, host, ua, inApp, 600)
	g.imps = append(g.imps, ImpressionTruth{
		UserID: u.ID, Month: month, Ctx: ctx,
		ADX: res.ADX.Name, DSP: res.Winner.Name,
		ChargeCPM: res.ChargeCPM, Encrypted: res.Encrypted,
		NURL:         res.NURL,
		ADXSym:       g.syms.Names.Lookup(res.ADX.Name),
		DSPSym:       g.syms.Names.Lookup(res.Winner.Name),
		PublisherSym: g.syms.Hosts.Lookup(prop.Domain),
	})
}

// preinternVocab builds the trace's symbol table up front: every bounded
// vocabulary the generator emits — catalog and third-party hosts, the
// exchanges' notification hosts, the shared web user agents, and the ad
// entity names — is interned in a deterministic order before any worker
// starts. The table is read-only from then on, which is what lets the
// parallel workers share it without locks and keeps symbol ids identical
// at every worker count.
func preinternVocab(cat *Catalog, eco *rtb.Ecosystem) *detect.SymbolTable {
	syms := detect.NewSymbolTable()
	for _, p := range cat.Sites {
		syms.Hosts.Intern(p.Domain)
	}
	for _, p := range cat.Apps {
		syms.Hosts.Intern(p.Domain)
	}
	for _, hosts := range [][]string{cdnHosts, analyticsHosts, socialHosts, syncHosts} {
		for _, h := range hosts {
			syms.Hosts.Intern(h)
		}
	}
	for _, adx := range eco.ADXs {
		// The notification host is however the exchange's descriptor
		// renders it; derive it by building a throwaway notification
		// rather than duplicating nurl's host table here.
		syms.Hosts.Intern(hostOf(nurl.Build(adx.Exchange, nurl.BuildSpec{PriceCPM: 1})))
		syms.Names.Intern(adx.Name)
		for _, d := range adx.DSPs {
			syms.Names.Intern(d.Name)
		}
	}
	for _, os := range []useragent.OS{
		useragent.Android, useragent.IOS, useragent.WindowsMobile, useragent.OSOther,
	} {
		for _, dev := range []useragent.DeviceType{useragent.Smartphone, useragent.Tablet} {
			syms.Agents.Intern(useragent.Build(useragent.Spec{
				OS: os, Type: dev, Origin: useragent.MobileWeb,
			}))
		}
	}
	return syms
}

// monthIndex converts a calendar month of the trace year into the
// ecosystem's 1-based months-since-Jan-2015 adoption clock.
func monthIndex(year, month int) int {
	return (year-2015)*12 + month
}

func hostOf(rawURL string) string {
	const scheme = "http://"
	s := rawURL
	if len(s) > len(scheme) && s[:len(scheme)] == scheme {
		s = s[len(scheme):]
	}
	for i := 0; i < len(s); i++ {
		if s[i] == '/' || s[i] == '?' {
			return s[:i]
		}
	}
	return s
}

func makeUsers(cfg Config, pop Population, rng *stats.Rand) []User {
	cities := geoip.AllCities()
	cityWeights := make([]float64, len(cities))
	for i, c := range cities {
		cityWeights[i] = c.Weight()
	}
	users := make([]User, cfg.Users)
	for i := range users {
		city := cities[rng.WeightedChoice(cityWeights)]
		os := pop.sampleOS(rng)
		dev := useragent.Smartphone
		if rng.Float64() < pop.TabletShare {
			dev = useragent.Tablet
		}
		value := rng.LogNormal(-0.125, 0.5)
		if rng.Float64() < pop.WhaleShare { // whales, §6.2's ~2% of users
			value *= 8 + rng.Float64()*32
		}
		u := User{
			ID:              i,
			City:            city,
			OS:              os,
			Device:          dev,
			IP:              geoip.AddrFor(city, uint16(i)),
			ValueMultiplier: value,
			SessionsPerDay:  rng.LogNormal(pop.SessionsMu, pop.SessionsSigma),
			AppAffinity:     pop.AppAffinityBase + pop.AppAffinitySpan*rng.Float64(),
			SyncID:          fmt.Sprintf("uid-%08x%08x", rng.Int63()&0xFFFFFFFF, i),
		}
		// The short-circuit keeps bot-free populations (the default)
		// from consuming an extra draw per user.
		if pop.BotShare > 0 && rng.Float64() < pop.BotShare {
			// Automated traffic: many short sessions, almost never
			// in-app, and a value the DMPs heavily discount without
			// zeroing — undetected bots still cost advertisers money,
			// which is exactly what the bot-noise scenario measures.
			u.Bot = true
			u.SessionsPerDay = rng.LogNormal(0.7, 0.4)
			u.AppAffinity = 0.02 + 0.08*rng.Float64()
			u.ValueMultiplier = value * 0.25
		}
		users[i] = u
	}
	return users
}

func isLeap(y int) bool {
	return y%4 == 0 && (y%100 != 0 || y%400 == 0)
}
