package weblog

import (
	"fmt"
	"sort"
	"time"

	"yourandvalue/internal/detect"
	"yourandvalue/internal/geoip"
	"yourandvalue/internal/rtb"
	"yourandvalue/internal/stats"
	"yourandvalue/internal/useragent"
)

// Config sizes a synthetic trace. The zero value is invalid; use
// DefaultConfig (full paper scale) or DefaultConfig().Scaled(f).
type Config struct {
	Seed int64
	// Users is the population size; the paper's D has 1,594.
	Users int
	// Impressions is the target number of RTB price notifications; the
	// paper's D carries 78,560.
	Impressions int
	// Sites and Apps size the browsing catalog.
	Sites, Apps int
	// Year of the trace; D spans 2015.
	Year int
	// BackgroundPerSession is the mean number of non-ad third-party
	// requests logged per browsing session.
	BackgroundPerSession float64
	// Ecosystem overrides the default RTB simulator when non-nil.
	Ecosystem *rtb.Ecosystem
}

// DefaultConfig reproduces the paper's dataset-D scale.
func DefaultConfig() Config {
	return Config{
		Seed:                 1,
		Users:                1594,
		Impressions:          78560,
		Sites:                300,
		Apps:                 150,
		Year:                 2015,
		BackgroundPerSession: 2.5,
	}
}

// Scaled returns a copy with the population and impression volume scaled
// by f, for fast tests and benchmarks. f is clamped into (0, 1]: factors
// above 1 run at full scale (f = 1) and non-positive factors collapse to
// the minimum population (10 users / 100 impressions), so an out-of-range
// factor never silently returns the unscaled full-size config.
func (c Config) Scaled(f float64) Config {
	f = min(max(f, 0), 1)
	c.Users = max(int(float64(c.Users)*f), 10)
	c.Impressions = max(int(float64(c.Impressions)*f), 100)
	return c
}

// Normalized returns the configuration Generate actually runs: a config
// without a positive population falls back to DefaultConfig wholesale
// (the historical contract), and zero Year/Sites/Apps take their
// defaults. Normalized is idempotent and does not touch Ecosystem.
func (c Config) Normalized() Config {
	if c.Users <= 0 || c.Impressions <= 0 {
		c = DefaultConfig()
	}
	if c.Year == 0 {
		c.Year = 2015
	}
	if c.Sites <= 0 {
		c.Sites = 300
	}
	if c.Apps <= 0 {
		c.Apps = 150
	}
	return c
}

// diurnal weights the hour-of-day at which sessions start.
var diurnal = [24]float64{
	1.0, 0.5, 0.3, 0.2, 0.3, 0.6, 1.2, 2.2, 3.0, 3.4, 3.5, 3.4,
	3.0, 3.0, 2.6, 2.6, 3.0, 3.4, 4.0, 4.4, 4.4, 3.8, 2.8, 1.8,
}

// Third-party background hosts, keyed to the default traffic-class lists.
var (
	cdnHosts       = []string{"cdn.gstatic.com", "img.akamaihd.net", "assets.cloudfront.net", "code.jquery.com"}
	analyticsHosts = []string{"www.google-analytics.com", "b.scorecardresearch.com", "pixel.quantserve.com"}
	socialHosts    = []string{"connect.facebook.net", "platform.twitter.com", "widgets.pinterest.com"}
	syncHosts      = []string{"sync.adnxs.com", "pixel.rubiconproject.com", "sync.mathtag.com", "cm.turn.com", "us-ads.openx.net"}
)

// Generate materializes a synthetic year-long trace per the config. The
// result is deterministic in Config.Seed. Generate is the batch form of
// GenerateStream: it accumulates every user's records and applies the
// global time sort.
func Generate(cfg Config) *Trace {
	cfg = cfg.Normalized()
	catalog := NewCatalog(cfg.Sites, cfg.Apps)
	trace := &Trace{Catalog: catalog, Year: cfg.Year}
	// GenerateStream never fails when yield never fails.
	_ = GenerateStream(cfg, catalog, func(ut UserTrace) error {
		trace.Users = append(trace.Users, ut.User)
		trace.Requests = append(trace.Requests, ut.Requests...)
		trace.Impressions = append(trace.Impressions, ut.Impressions...)
		trace.Symbols = ut.Symbols
		return nil
	})
	// Each user's records arrive pre-sorted, so the stable global sort
	// reproduces exactly the order the historical single-pass generator
	// produced: ties keep generation order within a user, and users keep
	// their relative generation order across equal timestamps.
	sort.SliceStable(trace.Requests, func(i, j int) bool {
		return trace.Requests[i].Time.Before(trace.Requests[j].Time)
	})
	sort.SliceStable(trace.Impressions, func(i, j int) bool {
		return trace.Impressions[i].Ctx.Time.Before(trace.Impressions[j].Ctx.Time)
	})
	return trace
}

// UserTrace is one user's complete year of traffic as GenerateStream
// emits it: requests stable-sorted by time (matching the user's relative
// record order in the fully sorted batch trace) together with the
// generator-side ground truth behind their RTB impressions. The slices
// are owned by the callee. Symbols is the stream-wide interner behind
// the records' dense ids — the same table instance on every yield, and
// still being extended until the final yield returns.
type UserTrace struct {
	User        User
	Requests    []Request
	Impressions []ImpressionTruth
	Symbols     *detect.SymbolTable
}

// GenerateStream is the incremental form of Generate: it synthesizes the
// same trace user by user, calling yield once per user with that user's
// complete traffic, so peak memory stays bounded by a single user's
// records instead of the whole population's. cat overrides the browsing
// catalog when non-nil (it must be a NewCatalog of the config's sizes);
// nil builds one. A non-nil error from yield stops generation and is
// returned.
//
// Determinism: GenerateStream consumes the seeded RNG in exactly the
// order the batch generator historically did, so concatenating every
// yielded UserTrace and stable-sorting by time is bit-identical to
// Generate(cfg) — Generate is implemented on top of this function.
func GenerateStream(cfg Config, cat *Catalog, yield func(UserTrace) error) error {
	cfg = cfg.Normalized()
	rng := stats.NewRand(cfg.Seed)
	eco := cfg.Ecosystem
	if eco == nil {
		eco = rtb.NewEcosystem(rtb.EcosystemConfig{Seed: cfg.Seed + 1})
	}
	if cat == nil {
		cat = NewCatalog(cfg.Sites, cfg.Apps)
	}

	users := makeUsers(cfg, rng)

	// Auction probability per session calibrated so the expected RTB
	// impression count meets the target.
	days := 365
	if isLeap(cfg.Year) {
		days = 366
	}
	expectedSessions := 0.0
	for _, u := range users {
		expectedSessions += u.SessionsPerDay * float64(days)
	}
	adRate := float64(cfg.Impressions) / expectedSessions // may exceed 1

	g := &generator{cfg: cfg, rng: rng, eco: eco, catalog: cat, syms: detect.NewSymbolTable()}
	siteZipf := rng.Zipf(1.15, len(cat.Sites))
	appZipf := rng.Zipf(1.15, len(cat.Apps))

	start := time.Date(cfg.Year, 1, 1, 0, 0, 0, 0, time.UTC)
	for ui := range users {
		u := &users[ui]
		g.reqs, g.imps = nil, nil
		webUA := useragent.Build(useragent.Spec{
			OS: u.OS, Type: u.Device, Origin: useragent.MobileWeb,
		})
		appUA := useragent.Build(useragent.Spec{
			OS: u.OS, Type: u.Device, Origin: useragent.MobileApp,
			App: fmt.Sprintf("com.user%04d.app", u.ID),
		})
		for day := 0; day < days; day++ {
			n := rng.Poisson(u.SessionsPerDay)
			for s := 0; s < n; s++ {
				hour := rng.WeightedChoice(diurnal[:])
				ts := start.Add(time.Duration(day)*24*time.Hour +
					time.Duration(hour)*time.Hour +
					time.Duration(rng.Intn(3600))*time.Second)
				inApp := rng.Float64() < u.AppAffinity
				var prop Property
				var ua string
				if inApp {
					prop = cat.Apps[appZipf.Next()]
					ua = appUA
				} else {
					prop = cat.Sites[siteZipf.Next()]
					ua = webUA
				}
				g.session(u, ts, prop, ua, inApp, adRate)
			}
		}
		sort.SliceStable(g.reqs, func(i, j int) bool {
			return g.reqs[i].Time.Before(g.reqs[j].Time)
		})
		sort.SliceStable(g.imps, func(i, j int) bool {
			return g.imps[i].Ctx.Time.Before(g.imps[j].Ctx.Time)
		})
		if err := yield(UserTrace{User: *u, Requests: g.reqs, Impressions: g.imps, Symbols: g.syms}); err != nil {
			return err
		}
	}
	return nil
}

type generator struct {
	cfg     Config
	rng     *stats.Rand
	eco     *rtb.Ecosystem
	catalog *Catalog
	syms    *detect.SymbolTable
	// reqs and imps buffer the user currently being generated.
	reqs []Request
	imps []ImpressionTruth
}

func (g *generator) emit(r Request) { g.reqs = append(g.reqs, r) }

// request emits one record with its interned views. Only strings from
// bounded vocabularies are interned — hosts (catalog plus fixed
// third-party sets) and the shared web user agents. Per-user-unique
// strings (the com.userNNNN.app UA, the client IP) stay string-typed:
// interning them would grow the stream-wide SymbolTable linearly with
// users streamed, breaking GenerateStream's bounded-memory contract,
// and the detection engine's string-keyed caches evict them at user
// boundaries anyway.
func (g *generator) request(u *User, ts time.Time, rawURL, host, ua string, inApp bool, meanBytes float64) {
	r := Request{
		Time: ts, UserID: u.ID, URL: rawURL, Host: host,
		UserAgent: ua, ClientIP: u.IP,
		Bytes:      int64(g.rng.LogNormalMeanStd(meanBytes, meanBytes)),
		DurationMS: g.rng.LogNormalMeanStd(180, 150),
		HostSym:    g.syms.Hosts.Intern(host),
	}
	if !inApp {
		r.AgentSym = g.syms.Agents.Intern(ua)
	}
	g.emit(r)
}

// session emits the request cluster of one browsing session: the page (or
// app API call), background third-party traffic, occasional cookie syncs
// and beacons, and — with probability adRate — an RTB auction whose nURL
// lands in the trace.
func (g *generator) session(u *User, ts time.Time, prop Property, ua string, inApp bool, adRate float64) {
	rng := g.rng
	pageURL := "http://" + prop.Domain + "/"
	if prop.IsApp() {
		pageURL = "http://" + prop.Domain + "/v1/feed"
	}
	g.request(u, ts, pageURL, prop.Domain, ua, inApp, 24000)

	nBg := rng.Poisson(g.cfg.BackgroundPerSession)
	for i := 0; i < nBg; i++ {
		ts = ts.Add(time.Duration(50+rng.Intn(400)) * time.Millisecond)
		var host, path string
		switch rng.Intn(4) {
		case 0:
			host, path = analyticsHosts[rng.Intn(len(analyticsHosts))], "/collect?v=1&t=pageview"
		case 1:
			host, path = socialHosts[rng.Intn(len(socialHosts))], "/plugins/like.php"
		default:
			host, path = cdnHosts[rng.Intn(len(cdnHosts))], fmt.Sprintf("/static/a%d.js", rng.Intn(50))
		}
		g.request(u, ts, "http://"+host+path, host, ua, inApp, 8000)
	}

	// Cookie synchronization: a pair of ad hosts exchanging the user's ID.
	if rng.Float64() < 0.10 {
		h1 := syncHosts[rng.Intn(len(syncHosts))]
		h2 := syncHosts[rng.Intn(len(syncHosts))]
		ts = ts.Add(80 * time.Millisecond)
		g.request(u, ts, fmt.Sprintf("http://%s/getuid?user_id=%s", h1, u.SyncID), h1, ua, inApp, 400)
		if h2 != h1 {
			ts = ts.Add(40 * time.Millisecond)
			g.request(u, ts, fmt.Sprintf("http://%s/usersync?user_id=%s&redir=http%%3A%%2F%%2F%s%%2Fmatch", h2, u.SyncID, h1), h2, ua, inApp, 400)
		}
	}
	if rng.Float64() < 0.10 {
		h := syncHosts[rng.Intn(len(syncHosts))]
		ts = ts.Add(60 * time.Millisecond)
		g.request(u, ts, "http://"+h+"/px.gif?r="+fmt.Sprint(rng.Intn(1<<30)), h, ua, inApp, 43)
	}

	// RTB auctions for this session's ad slots.
	k := int(adRate)
	if rng.Float64() < adRate-float64(k) {
		k++
	}
	for i := 0; i < k; i++ {
		ts = ts.Add(time.Duration(100+rng.Intn(300)) * time.Millisecond)
		g.auction(u, ts, prop, ua, inApp)
	}
}

func (g *generator) auction(u *User, ts time.Time, prop Property, ua string, inApp bool) {
	month := int(ts.Month())
	origin := useragent.MobileWeb
	if prop.IsApp() {
		origin = useragent.MobileApp
	}
	ctx := rtb.Context{
		Time:      ts,
		City:      u.City,
		OS:        u.OS,
		Device:    u.Device,
		Origin:    origin,
		Publisher: prop.Domain,
		Category:  prop.Category,
		Slot:      rtb.SampleSlot(month, g.rng.WeightedChoice),
		UserValue: u.ValueMultiplier,
		Year2016:  g.cfg.Year >= 2016,
	}
	res, ok := g.eco.Serve(ctx, monthIndex(g.cfg.Year, month))
	if !ok {
		return
	}
	host := hostOf(res.NURL)
	g.request(u, ts, res.NURL, host, ua, inApp, 600)
	g.imps = append(g.imps, ImpressionTruth{
		UserID: u.ID, Month: month, Ctx: ctx,
		ADX: res.ADX.Name, DSP: res.Winner.Name,
		ChargeCPM: res.ChargeCPM, Encrypted: res.Encrypted,
		NURL:         res.NURL,
		ADXSym:       g.syms.Names.Intern(res.ADX.Name),
		DSPSym:       g.syms.Names.Intern(res.Winner.Name),
		PublisherSym: g.syms.Hosts.Intern(prop.Domain),
	})
}

// monthIndex converts a calendar month of the trace year into the
// ecosystem's 1-based months-since-Jan-2015 adoption clock.
func monthIndex(year, month int) int {
	return (year-2015)*12 + month
}

func hostOf(rawURL string) string {
	const scheme = "http://"
	s := rawURL
	if len(s) > len(scheme) && s[:len(scheme)] == scheme {
		s = s[len(scheme):]
	}
	for i := 0; i < len(s); i++ {
		if s[i] == '/' || s[i] == '?' {
			return s[:i]
		}
	}
	return s
}

func makeUsers(cfg Config, rng *stats.Rand) []User {
	cities := geoip.AllCities()
	cityWeights := make([]float64, len(cities))
	for i, c := range cities {
		cityWeights[i] = c.Weight()
	}
	users := make([]User, cfg.Users)
	for i := range users {
		city := cities[rng.WeightedChoice(cityWeights)]
		var os useragent.OS
		switch r := rng.Float64(); {
		case r < 0.62:
			os = useragent.Android
		case r < 0.93:
			os = useragent.IOS
		case r < 0.98:
			os = useragent.WindowsMobile
		default:
			os = useragent.OSOther
		}
		dev := useragent.Smartphone
		if rng.Float64() < 0.18 {
			dev = useragent.Tablet
		}
		value := rng.LogNormal(-0.125, 0.5)
		if rng.Float64() < 0.02 { // whales, §6.2's ~2% of users
			value *= 8 + rng.Float64()*32
		}
		users[i] = User{
			ID:              i,
			City:            city,
			OS:              os,
			Device:          dev,
			IP:              geoip.AddrFor(city, uint16(i)),
			ValueMultiplier: value,
			SessionsPerDay:  rng.LogNormal(-1.2, 0.9), // median ≈0.30/day
			AppAffinity:     0.30 + 0.50*rng.Float64(),
			SyncID:          fmt.Sprintf("uid-%08x%08x", rng.Int63()&0xFFFFFFFF, i),
		}
	}
	return users
}

func isLeap(y int) bool {
	return y%4 == 0 && (y%100 != 0 || y%400 == 0)
}
