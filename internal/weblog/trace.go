package weblog

import (
	"time"

	"yourandvalue/internal/geoip"
	"yourandvalue/internal/rtb"
	"yourandvalue/internal/useragent"
)

// Request is one HTTP request record as the paper's proxy logged it:
// timestamp, user, URL, UA, client address, and transfer accounting.
type Request struct {
	Time       time.Time
	UserID     int
	URL        string
	Host       string
	UserAgent  string
	ClientIP   string
	Bytes      int64
	DurationMS float64
}

// User is one member of the synthetic population with the latent traits
// that shape their traffic and their value to advertisers.
type User struct {
	ID     int
	City   geoip.City
	OS     useragent.OS
	Device useragent.DeviceType
	IP     string
	// ValueMultiplier is the heavy-tailed per-user worth advertisers
	// perceive; whales (paper §6.2's ~2% of users) carry large values.
	ValueMultiplier float64
	// SessionsPerDay is the user's mean browsing-session rate.
	SessionsPerDay float64
	// AppAffinity is the probability a session happens in an app rather
	// than the mobile browser.
	AppAffinity float64
	// SyncID is the user identifier ad domains exchange in cookie syncs.
	SyncID string
}

// ImpressionTruth retains the generator-side ground truth for one RTB
// impression: what the auction actually charged and under which context.
// The analyzer never sees this; evaluation harnesses score against it.
type ImpressionTruth struct {
	UserID    int
	Month     int // 1..12 within the trace year
	Ctx       rtb.Context
	ADX       string
	DSP       string
	ChargeCPM float64
	Encrypted bool
	NURL      string
}

// Trace is a fully materialized synthetic weblog.
type Trace struct {
	Users       []User
	Requests    []Request // time-ordered
	Impressions []ImpressionTruth
	Catalog     *Catalog
	Year        int
}

// RTBCount returns the number of RTB impressions in the trace (the
// paper's Table 3 "Impressions" row for D).
func (t *Trace) RTBCount() int { return len(t.Impressions) }
