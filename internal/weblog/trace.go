package weblog

import (
	"time"

	"yourandvalue/internal/detect"
	"yourandvalue/internal/geoip"
	"yourandvalue/internal/rtb"
	"yourandvalue/internal/useragent"
)

// Request is one HTTP request record as the paper's proxy logged it:
// timestamp, user, URL, UA, client address, and transfer accounting.
// The generator also interns bounded-vocabulary strings (hosts, shared
// web user agents) into the trace's detect.SymbolTable and records the
// symbols alongside the string views, so detection engines can key
// their caches by dense id. Per-user-unique strings — the in-app UA
// and the client address — deliberately stay uninterned (symbol None):
// interning them would grow the stream-wide table linearly with users
// and break GenerateStream's bounded-memory contract, and consumers
// fall back to evictable string-keyed caches for them. Hand-built
// requests may leave every symbol zero.
type Request struct {
	Time       time.Time
	UserID     int
	URL        string
	Host       string
	UserAgent  string
	ClientIP   string
	Bytes      int64
	DurationMS float64

	// Interned views (detect.None when the record was not interned).
	HostSym  detect.Sym
	AgentSym detect.Sym
	AddrSym  detect.Sym
}

// Detect returns the request in the detection engine's record form.
func (r Request) Detect() detect.Record {
	return detect.Record{
		Time:      r.Time,
		UserID:    r.UserID,
		URL:       r.URL,
		Host:      r.Host,
		UserAgent: r.UserAgent,
		ClientIP:  r.ClientIP,
		HostSym:   r.HostSym,
		AgentSym:  r.AgentSym,
		AddrSym:   r.AddrSym,
	}
}

// User is one member of the synthetic population with the latent traits
// that shape their traffic and their value to advertisers.
type User struct {
	ID     int
	City   geoip.City
	OS     useragent.OS
	Device useragent.DeviceType
	IP     string
	// ValueMultiplier is the heavy-tailed per-user worth advertisers
	// perceive; whales (paper §6.2's ~2% of users) carry large values.
	ValueMultiplier float64
	// SessionsPerDay is the user's mean browsing-session rate.
	SessionsPerDay float64
	// AppAffinity is the probability a session happens in an app rather
	// than the mobile browser.
	AppAffinity float64
	// SyncID is the user identifier ad domains exchange in cookie syncs.
	SyncID string
	// Bot marks automated traffic (bot-noise scenarios): heavy session
	// rates, near-zero app usage, and a discounted advertiser value.
	Bot bool
}

// ImpressionTruth retains the generator-side ground truth for one RTB
// impression: what the auction actually charged and under which context.
// The analyzer never sees this; evaluation harnesses score against it.
// The ad entities and publisher are interned like Request's strings.
type ImpressionTruth struct {
	UserID    int
	Month     int // 1..12 within the trace year
	Ctx       rtb.Context
	ADX       string
	DSP       string
	ChargeCPM float64
	Encrypted bool
	NURL      string

	// Interned views (detect.None when the record was not interned).
	ADXSym       detect.Sym
	DSPSym       detect.Sym
	PublisherSym detect.Sym
}

// Trace is a fully materialized synthetic weblog. Symbols is the
// interned-string table behind the records' dense ids.
type Trace struct {
	Users       []User
	Requests    []Request // time-ordered
	Impressions []ImpressionTruth
	Catalog     *Catalog
	Symbols     *detect.SymbolTable
	Year        int
}

// RTBCount returns the number of RTB impressions in the trace (the
// paper's Table 3 "Impressions" row for D).
func (t *Trace) RTBCount() int { return len(t.Impressions) }
