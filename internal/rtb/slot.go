// Package rtb simulates the Real-Time Bidding ecosystem of paper §2: the
// publishers, SSPs, ad-exchanges, DSPs and data-management platforms whose
// interaction produces the winning-price notifications (nURLs) that
// YourAdValue measures. The simulator's auctions are second-price
// (Vickrey) exactly as §2.1 describes, and its ground-truth market model
// (market.go) encodes the per-feature price couplings the paper reports so
// the downstream methodology is exercised on realistic signal.
package rtb

// Slot is an ad-slot dimension in pixels.
type Slot struct {
	W, H int
}

// String returns the conventional "WxH" label used throughout the paper's
// figures.
func (s Slot) String() string {
	return itoa(s.W) + "x" + itoa(s.H)
}

// Area returns the slot area in square pixels, the quantity Figure 13
// shows does not correlate with price.
func (s Slot) Area() int { return s.W * s.H }

// itoa avoids importing strconv for two-field formatting in a hot path.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 && i > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// The 17 ad-slot sizes of the paper's Figure 12, in ascending area order
// (the order the figure's legend uses).
var (
	Slot300x50   = Slot{300, 50}
	Slot320x50   = Slot{320, 50} // "large mobile banner"
	Slot468x60   = Slot{468, 60}
	Slot200x200  = Slot{200, 200}
	Slot316x150  = Slot{316, 150}
	Slot728x90   = Slot{728, 90} // "leaderboard"
	Slot280x250  = Slot{280, 250}
	Slot120x600  = Slot{120, 600}
	Slot300x250  = Slot{300, 250} // "MPU" / "medium rectangle"
	Slot336x280  = Slot{336, 280}
	Slot160x600  = Slot{160, 600}
	Slot800x130  = Slot{800, 130}
	Slot400x300  = Slot{400, 300}
	Slot320x480  = Slot{320, 480}
	Slot480x320  = Slot{480, 320}
	Slot300x600  = Slot{300, 600} // "Monster MPU"
	Slot350x600  = Slot{350, 600}
	Slot768x1024 = Slot{768, 1024} // tablet portrait (Table 5 campaign format)
	Slot1024x768 = Slot{1024, 768} // tablet landscape
)

// FigureSlots are the 17 sizes of Figure 12 in legend (area) order.
var FigureSlots = []Slot{
	Slot300x50, Slot320x50, Slot468x60, Slot200x200, Slot316x150,
	Slot728x90, Slot280x250, Slot120x600, Slot300x250, Slot336x280,
	Slot160x600, Slot800x130, Slot400x300, Slot320x480, Slot480x320,
	Slot300x600, Slot350x600,
}

// slotBasePopularity is the time-independent popularity weight of each
// slot. Figure 12's dominant shapes (320x50 early, 300x250 later, 728x90
// steady) get most of the mass.
var slotBasePopularity = map[Slot]float64{
	Slot300x50: 2, Slot320x50: 22, Slot468x60: 3, Slot200x200: 1.5,
	Slot316x150: 1, Slot728x90: 14, Slot280x250: 2, Slot120x600: 2.5,
	Slot300x250: 24, Slot336x280: 3, Slot160x600: 4, Slot800x130: 1,
	Slot400x300: 1.5, Slot320x480: 4, Slot480x320: 3, Slot300x600: 4,
	Slot350x600: 1,
}

// SlotPopularity returns the relative popularity of slot s in month m
// (1..12 of 2015). It encodes the Figure 12 regime change: 320x50 "large
// mobile banners" dominate early 2015; 300x250 MPUs take over from May
// (month 5) on.
func SlotPopularity(s Slot, month int) float64 {
	w, ok := slotBasePopularity[s]
	if !ok {
		return 0
	}
	if month < 1 {
		month = 1
	}
	if month > 12 {
		month = 12
	}
	// Linear handover between the two headline formats across the year.
	progress := float64(month-1) / 11 // 0 in Jan, 1 in Dec
	switch s {
	case Slot320x50:
		return w * (1.6 - 1.2*progress) // 35 → 9 relative units
	case Slot300x250:
		return w * (0.55 + 1.05*progress) // 13 → 38 relative units
	default:
		return w
	}
}

// SampleSlot draws a slot for the given month from the popularity model.
func SampleSlot(month int, pick func(weights []float64) int) Slot {
	weights := make([]float64, len(FigureSlots))
	for i, s := range FigureSlots {
		weights[i] = SlotPopularity(s, month)
	}
	i := pick(weights)
	if i < 0 || i >= len(FigureSlots) {
		return Slot300x250
	}
	return FigureSlots[i]
}

// TabletSlots are the tablet campaign ad-formats of Table 5.
var TabletSlots = []Slot{Slot728x90, Slot300x250, Slot768x1024, Slot1024x768}

// SmartphoneSlots are the smartphone campaign ad-formats of Table 5.
var SmartphoneSlots = []Slot{Slot320x50, Slot300x250, Slot320x480, Slot480x320}
