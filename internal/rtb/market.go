package rtb

import (
	"math"
	"time"

	"yourandvalue/internal/geoip"
	"yourandvalue/internal/iab"
	"yourandvalue/internal/useragent"
)

// Context carries everything the ad ecosystem knows about one impression
// opportunity when bids are computed: the auction's geo-temporal state,
// the user's device and interests, and the ad-slot (the three feature
// groups of paper §4.2–4.4).
type Context struct {
	Time      time.Time
	City      geoip.City
	OS        useragent.OS
	Device    useragent.DeviceType
	Origin    useragent.Origin // mobile app vs mobile web
	Publisher string
	Category  iab.Category
	Slot      Slot
	// UserValue is the per-user multiplier the DMPs assign from behavioural
	// profiles; the trace generator samples it heavy-tailed so a small
	// fraction of "whale" users draw 10–100× prices (paper §6.2's ~2%).
	UserValue float64
	// Encrypted marks the delivery channel of the winning pair; encrypting
	// pairs carry systematically higher prices (paper Fig 16, ≈1.7×).
	Encrypted bool
	// Year2016 applies the time-shift: campaign-time (2016) prices run
	// higher than the 2015 weblog (paper §6.2's time-correction).
	Year2016 bool
}

// Market is the ground-truth price model: the structural part of every
// DSP's valuation of an impression. It is intentionally a pure function of
// Context so tests can verify each coupling in isolation, and so the PME's
// job — recovering these couplings from observed prices — is well-posed.
type Market struct {
	// BaseCPM is the median-ish anchor price for a plain mobile-web
	// impression; defaults to 0.22 CPM (the paper's web median is 0.273).
	BaseCPM float64

	// EncryptedBidFactor is the bid-side channel multiplier: pairs that
	// encrypt bid on richer hidden signals (§2.3's aggressive-retargeting
	// hypothesis). Default 1.15.
	EncryptedBidFactor float64

	// EncryptedSurcharge is the settlement-side multiplier the exchange
	// applies to charges of encrypted winners — §2.3: "these costs alone
	// could be a reason for an ADX to charge more for providing the
	// benefits of encryption". Default 1.48; together with the bid factor
	// the encrypted/cleartext median gap lands at the paper's ≈1.7×
	// (Figure 16).
	EncryptedSurcharge float64

	// AppFactor multiplies in-app impressions (default 2.6, §4.4).
	AppFactor float64

	// Year2016Factor is the 2015→2016 time shift (default 1.35, §6.2).
	Year2016Factor float64
}

// DefaultMarket returns the calibrated market model.
func DefaultMarket() *Market {
	return &Market{
		BaseCPM:            0.22,
		EncryptedBidFactor: 1.15,
		EncryptedSurcharge: 1.48,
		AppFactor:          2.6,
		Year2016Factor:     1.35,
	}
}

// cityFactor: large metros have slightly lower medians but wider spread
// (Figure 5); the second value scales bid noise.
var cityFactor = map[geoip.City][2]float64{
	geoip.Madrid:             {0.88, 1.45},
	geoip.Barcelona:          {0.90, 1.40},
	geoip.Seville:            {0.95, 1.25},
	geoip.Valencia:           {0.95, 1.25},
	geoip.Malaga:             {1.00, 1.15},
	geoip.Zaragoza:           {1.00, 1.10},
	geoip.VillaviciosaDeOdon: {1.12, 0.90},
	geoip.PriegoDeCordoba:    {1.15, 0.85},
	geoip.DosHermanas:        {1.10, 0.90},
	geoip.Torello:            {1.18, 0.80},
}

// hourFactor implements Figure 6: similar medians with elevated
// early-morning-to-noon prices. Indexed by the paper's six 4-hour bins.
var hourFactor = [6]float64{0.92, 1.12, 1.22, 1.02, 0.96, 0.90}

// HourBin maps an hour (0-23) to the paper's Figure 6 bin (0-5).
func HourBin(hour int) int {
	if hour < 0 {
		hour = 0
	}
	return (hour % 24) / 4
}

// HourBinLabel returns the Figure 6 axis label for a bin.
func HourBinLabel(bin int) string {
	labels := [6]string{"00:00-03:00", "04:00-07:00", "08:00-11:00",
		"12:00-15:00", "16:00-19:00", "20:00-23:00"}
	if bin < 0 || bin >= len(labels) {
		return "?"
	}
	return labels[bin]
}

// dowFactor implements Figure 7: close medians, with Monday attention and
// Sunday leisure elevated and Saturday depressed — the contrast that makes
// the weekday/weekend distributions statistically distinguishable (the
// paper's KS test at p<0.002). Indexed by time.Weekday (Sunday = 0).
var dowFactor = [7]float64{1.09, 1.11, 0.99, 0.98, 0.98, 1.00, 0.93}

// dowSpread widens weekday tails: "during weekdays the max prices are
// relatively higher than on weekends".
var dowSpread = [7]float64{0.75, 1.35, 1.30, 1.30, 1.30, 1.25, 0.75}

// osFactor implements Figure 10: iOS devices draw higher median prices.
var osFactor = map[useragent.OS]float64{
	useragent.Android:       1.00,
	useragent.IOS:           1.38,
	useragent.WindowsMobile: 0.80,
	useragent.OSOther:       0.70,
}

// iabFactor implements Figure 11: Business & Marketing (IAB3) draws up to
// ~5 CPM at the median while Science (IAB15) stays under 0.2 CPM.
var iabFactor = map[iab.Category]float64{
	iab.ArtsEntertainment:   1.00,
	iab.Automotive:          1.60,
	iab.Business:            9.00,
	iab.Careers:             1.10,
	iab.Education:           0.70,
	iab.FamilyParenting:     0.90,
	iab.HealthFitness:       1.40,
	iab.FoodDrink:           0.95,
	iab.HobbiesInterests:    0.85,
	iab.HomeGarden:          1.05,
	iab.LawGovPolitics:      0.80,
	iab.News:                1.20,
	iab.PersonalFinance:     2.60,
	iab.Society:             0.75,
	iab.Science:             0.30,
	iab.Pets:                0.85,
	iab.Sports:              1.30,
	iab.StyleFashion:        1.45,
	iab.TechnologyComputing: 1.15,
	iab.Travel:              1.55,
	iab.RealEstate:          1.70,
	iab.Shopping:            2.00,
}

// slotFactor implements Figure 13: price does not track area. The MPU
// (300x250) and Monster MPU (300x600) are the most expensive; the large
// banner (320x50) is cheap despite its reach; interstitials (320x480)
// price well.
var slotFactor = map[Slot]float64{
	Slot300x50: 0.50, Slot320x50: 0.55, Slot468x60: 0.72, Slot200x200: 0.70,
	Slot316x150: 0.65, Slot728x90: 1.00, Slot280x250: 0.90, Slot120x600: 0.82,
	Slot300x250: 1.90, Slot336x280: 1.20, Slot160x600: 0.95, Slot800x130: 0.78,
	Slot400x300: 1.02, Slot320x480: 1.30, Slot480x320: 1.22, Slot300x600: 1.58,
	Slot350x600: 1.12, Slot768x1024: 1.15, Slot1024x768: 1.10,
}

// StructuralCPM returns the deterministic component of an impression's
// value under the market model: the product of the base anchor and every
// feature multiplier. DSP bids scatter log-normally around (a multiple of)
// this value, and the Vickrey charge price inherits its structure.
func (m *Market) StructuralCPM(ctx Context) float64 {
	v := m.BaseCPM
	if f, ok := cityFactor[ctx.City]; ok {
		v *= f[0]
	}
	v *= hourFactor[HourBin(ctx.Time.Hour())]
	v *= dowFactor[int(ctx.Time.Weekday())]
	if f, ok := osFactor[ctx.OS]; ok {
		v *= f
	}
	if f, ok := iabFactor[ctx.Category]; ok {
		v *= f
	}
	if f, ok := slotFactor[ctx.Slot]; ok {
		v *= f
	}
	if ctx.Origin == useragent.MobileApp {
		v *= m.AppFactor
	}
	v *= PublisherQuality(ctx.Publisher)
	if ctx.Encrypted {
		v *= m.EncryptedBidFactor
	}
	if ctx.Year2016 {
		v *= m.Year2016Factor
	}
	if ctx.UserValue > 0 {
		v *= ctx.UserValue
	}
	return v
}

// NoiseSpread returns the context-dependent width (log-stddev scale) of
// bid noise: wider in big cities and on weekdays, per Figures 5 and 7.
func (m *Market) NoiseSpread(ctx Context) float64 {
	spread := 1.0
	if f, ok := cityFactor[ctx.City]; ok {
		spread *= f[1]
	}
	spread *= dowSpread[int(ctx.Time.Weekday())]
	return spread
}

// PublisherQuality is a deterministic per-publisher price multiplier in
// [0.70, 1.43]: real inventories carry publisher-specific quality premiums
// beyond their content category (viewability, brand safety, audience
// quality). Because it is a stable function of the domain, the exact
// publisher identity carries price signal *within* a campaign — which is
// precisely why the §5.4 publisher-augmented model scores higher in cross
// validation yet overfits the thousands of unseen publishers in real
// weblogs.
func PublisherQuality(domain string) float64 {
	if domain == "" {
		return 1
	}
	const prime = 16777619
	h := uint32(2166136261)
	for i := 0; i < len(domain); i++ {
		h ^= uint32(domain[i])
		h *= prime
	}
	u := float64(h%10000)/10000 - 0.5 // uniform in [−0.5, 0.5)
	// exp(±0.355) ≈ ×0.70 … ×1.43
	return math.Exp(0.71 * u)
}

// CityPriceFactor exposes the median multiplier for tests and docs.
func CityPriceFactor(c geoip.City) float64 {
	if f, ok := cityFactor[c]; ok {
		return f[0]
	}
	return 1
}

// IABPriceFactor exposes the category multiplier for tests and docs.
func IABPriceFactor(c iab.Category) float64 {
	if f, ok := iabFactor[c]; ok {
		return f
	}
	return 1
}

// SlotPriceFactor exposes the slot multiplier for tests and docs.
func SlotPriceFactor(s Slot) float64 {
	if f, ok := slotFactor[s]; ok {
		return f
	}
	return 1
}

// OSPriceFactor exposes the OS multiplier for tests and docs.
func OSPriceFactor(os useragent.OS) float64 {
	if f, ok := osFactor[os]; ok {
		return f
	}
	return 1
}
