package rtb

import (
	"testing"

	"yourandvalue/internal/nurl"
	"yourandvalue/internal/stats"
)

func TestProbeEncrypts(t *testing.T) {
	e := NewEcosystem(EcosystemConfig{Seed: 31})
	for name, want := range map[string]bool{
		"DoubleClick": true, "OpenX": true, "Rubicon": true,
		"PulsePoint": true, "MoPub": false, "AppNexus": false, "Turn": false,
	} {
		adx, ok := e.FindADX(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if adx.ProbeEncrypts() != want {
			t.Errorf("%s ProbeEncrypts = %v, want %v", name, !want, want)
		}
	}
}

func TestRunProbeAuctionWinsWithHighBid(t *testing.T) {
	e := NewEcosystem(EcosystemConfig{Seed: 32})
	adx, _ := e.FindADX("DoubleClick")
	ctx := baseCtx()
	reg := nurl.Default()
	wins, fills := 0, 0
	for i := 0; i < 300; i++ {
		out := e.RunProbeAuction(adx, ctx, 17, 500) // overwhelming bid
		if !out.Filled {
			continue
		}
		fills++
		if !out.Won {
			t.Fatal("500-CPM probe bid lost")
		}
		wins++
		if out.ChargeCPM <= 0 || out.ChargeCPM > 500 {
			t.Fatalf("charge %v out of range", out.ChargeCPM)
		}
		if !out.Encrypted {
			t.Fatal("DoubleClick probe must be encrypted")
		}
		n, ok := reg.Parse(out.NURL)
		if !ok || n.Kind != nurl.Encrypted {
			t.Fatalf("probe nURL: %v kind %v", ok, n.Kind)
		}
		// The exchange's key recovers the reported charge.
		got, err := adx.Scheme.Decrypt(n.Token)
		if err != nil {
			t.Fatal(err)
		}
		if diff := got - out.ChargeCPM; diff > 1e-5 || diff < -1e-5 {
			t.Fatalf("token %v != report %v", got, out.ChargeCPM)
		}
	}
	if fills == 0 || wins != fills {
		t.Fatalf("wins %d / fills %d", wins, fills)
	}
}

func TestRunProbeAuctionLosesWithTinyBid(t *testing.T) {
	e := NewEcosystem(EcosystemConfig{Seed: 33})
	adx, _ := e.FindADX("MoPub")
	ctx := baseCtx()
	losses := 0
	for i := 0; i < 300; i++ {
		out := e.RunProbeAuction(adx, ctx, 6, 0.000001)
		if out.Filled && !out.Won {
			losses++
			if out.NURL != "" || out.ChargeCPM != 0 {
				t.Fatal("losing probe must not produce a report")
			}
		}
	}
	if losses < 200 {
		t.Errorf("micro bid lost only %d/300 auctions", losses)
	}
}

func TestRunProbeAuctionCleartextExchange(t *testing.T) {
	e := NewEcosystem(EcosystemConfig{Seed: 34})
	adx, _ := e.FindADX("MoPub")
	ctx := baseCtx()
	reg := nurl.Default()
	for i := 0; i < 100; i++ {
		out := e.RunProbeAuction(adx, ctx, 18, 500)
		if !out.Won {
			continue
		}
		if out.Encrypted {
			t.Fatal("MoPub probe should be cleartext")
		}
		n, ok := reg.Parse(out.NURL)
		if !ok || n.Kind != nurl.Cleartext {
			t.Fatalf("nURL kind %v", n.Kind)
		}
		if diff := n.PriceCPM - out.ChargeCPM; diff > 1e-9 || diff < -1e-9 {
			t.Fatal("cleartext price mismatch")
		}
	}
}

func TestRunProbeAuctionInvalidBid(t *testing.T) {
	e := NewEcosystem(EcosystemConfig{Seed: 35})
	adx, _ := e.FindADX("MoPub")
	out := e.RunProbeAuction(adx, baseCtx(), 6, 0)
	if out.Filled || out.Won {
		t.Error("zero bid should not enter the auction")
	}
	out = e.RunProbeAuction(adx, baseCtx(), 6, -5)
	if out.Filled || out.Won {
		t.Error("negative bid should not enter the auction")
	}
}

// TestProbeChargeVickrey verifies the probe pays (at most) its own bid and
// tracks the top competitor: with a bid barely above the market, charges
// cluster near the bid; with an overwhelming bid, charges stay near market
// level (second-price property).
func TestProbeChargeVickrey(t *testing.T) {
	e := NewEcosystem(EcosystemConfig{Seed: 36})
	adx, _ := e.FindADX("OpenX")
	ctx := baseCtx()
	var hugeBidCharges []float64
	for i := 0; i < 400; i++ {
		if out := e.RunProbeAuction(adx, ctx, 10, 1000); out.Won {
			hugeBidCharges = append(hugeBidCharges, out.ChargeCPM)
		}
	}
	med, err := stats.Median(hugeBidCharges)
	if err != nil {
		t.Fatal(err)
	}
	// Second price ≪ the 1000-CPM bid: the probe pays market level.
	if med > 50 {
		t.Errorf("median charge %v under an overwhelming bid — not second-price", med)
	}
}

func TestPairEncryptedUnknownPair(t *testing.T) {
	e := NewEcosystem(EcosystemConfig{Seed: 37})
	if e.PairEncrypted("NoSuchADX", "nobody", 12) {
		t.Error("unknown pair should be cleartext")
	}
}
