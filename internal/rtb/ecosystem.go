package rtb

import (
	"fmt"
	"sort"

	"yourandvalue/internal/nurl"
	"yourandvalue/internal/priceenc"
	"yourandvalue/internal/stats"
)

// DSP is a demand-side platform: it values impressions on behalf of
// advertisers and submits bids to exchanges (paper §2.1). Aggressiveness
// scales its valuations; NoiseSigma is the log-stddev of its private
// valuation scatter around the market's structural price.
type DSP struct {
	Name           string
	Domain         string
	Aggressiveness float64
	NoiseSigma     float64
}

// Bid computes the DSP's bid for an impression. The bid is the market's
// structural value scaled by the DSP's aggressiveness and log-normal
// private-valuation noise whose width the market modulates per context.
func (d *DSP) Bid(m *Market, ctx Context, rng *stats.Rand) float64 {
	base := m.StructuralCPM(ctx) * d.Aggressiveness
	sigma := d.NoiseSigma * m.NoiseSpread(ctx)
	return base * rng.LogNormal(0, sigma)
}

// ADX is an ad-exchange: it hosts second-price auctions among the DSPs it
// is connected to, and issues the winning-price notification through the
// user's device (paper §2.2, delivery option ii).
type ADX struct {
	Name string
	// Share is the entity's share of all RTB traffic (Figure 3's x-axis).
	Share float64
	// EncBias biases how quickly this exchange's DSP pairs adopt price
	// encryption: 1 ≈ encrypted from the start (DoubleClick-like),
	// 0 ≈ stays cleartext (MoPub-like).
	EncBias float64
	// Exchange is the nURL macro descriptor used to render notifications.
	Exchange nurl.Exchange
	// Scheme encrypts charge prices for encrypted pairs.
	Scheme *priceenc.Scheme
	// DSPs connected to this exchange.
	DSPs []*DSP
}

// Pair identifies an ADX-DSP relationship, the unit of encryption adoption
// in Figure 2.
type Pair struct {
	ADX string
	DSP string
}

// Ecosystem wires exchanges, DSPs and the pair-level encryption adoption
// schedule together. It is the single stateful entry point the trace
// generator and the campaign engine drive.
type Ecosystem struct {
	Market   *Market
	Registry *nurl.Registry
	ADXs     []*ADX
	// Mechanism is the auction clearing rule every exchange applies;
	// SecondPrice (the paper's Vickrey marketplace) unless the config
	// selected another.
	Mechanism Mechanism
	// adoption maps a pair to the month index (1-based, months since
	// Jan 2015) at which it switches to encrypted notifications. Pairs
	// beyond the horizon stay cleartext.
	adoption map[Pair]int
	// adxWeights caches the share weights for PickADX (read-only after
	// construction, shared by every session).
	adxWeights []float64
	rng        *stats.Rand
	impSeq     uint64
}

// EcosystemConfig controls construction.
type EcosystemConfig struct {
	Seed int64
	// Market overrides the default market model when non-nil.
	Market *Market
	// Mechanism overrides the second-price clearing rule when non-nil.
	Mechanism Mechanism
	// EncBiasBoost is added to every exchange's encryption bias (clamped
	// into [0,1]) before the adoption schedule is drawn: positive values
	// simulate an ecosystem that encrypts more aggressively than 2015's.
	EncBiasBoost float64
	// AdoptionShiftMonths shifts every pair's encryption adoption month:
	// negative values pull adoption earlier (an encrypted-surge world),
	// positive values delay it. The shift alters the schedule only, not
	// the RNG draws, so the roster stays identical across scenarios.
	AdoptionShiftMonths int
}

// adxSpec seeds the default exchange roster with Figure 3's shares.
// MoPub and AppNexus (Adnxs) lead with predominantly cleartext prices;
// DoubleClick, OpenX, Rubicon, PulsePoint, MediaMath and myThings lean
// encrypted — the four campaign ADXs of §5 are among them.
var adxSpecs = []struct {
	name    string
	share   float64
	encBias float64
}{
	{"MoPub", 0.3355, 0.06},
	{"AppNexus", 0.1074, 0.12},
	{"DoubleClick", 0.0942, 0.88},
	{"OpenX", 0.0691, 0.78},
	{"Rubicon", 0.0646, 0.80},
	{"PulsePoint", 0.0445, 0.72},
	{"MediaMath", 0.0414, 0.85},
	{"myThings", 0.0387, 0.75},
	{"Turn", 0.0354, 0.10},
}

// dspSpecs is the default DSP roster (paper §2.1 names MediaMath, Criteo,
// DoubleClick Bid Manager, AppNexus, Invite Media as popular DSPs).
var dspSpecs = []struct {
	name, domain string
	aggr         float64
}{
	{"criteo", "criteo.com", 1.15},
	{"dbm", "doubleclick.net", 1.10},
	{"mediamath", "mathtag.com", 1.05},
	{"appnexus-dsp", "adnxs.com", 1.00},
	{"invitemedia", "invitemedia.com", 0.92},
	{"turn-dsp", "turn.com", 0.98},
	{"adform", "adform.net", 0.88},
	{"bluekai-dsp", "bluekai.com", 0.95},
}

// NewEcosystem builds the default nine-exchange, eight-DSP ecosystem with
// a deterministic pair-level encryption adoption schedule.
func NewEcosystem(cfg EcosystemConfig) *Ecosystem {
	rng := stats.NewRand(cfg.Seed)
	market := cfg.Market
	if market == nil {
		market = DefaultMarket()
	}
	reg := nurl.Default()

	dsps := make([]*DSP, len(dspSpecs))
	for i, s := range dspSpecs {
		dsps[i] = &DSP{
			Name: s.name, Domain: s.domain,
			Aggressiveness: s.aggr, NoiseSigma: 0.20,
		}
	}

	mech := cfg.Mechanism
	if mech == nil {
		mech = SecondPrice{}
	}
	eco := &Ecosystem{
		Market:    market,
		Registry:  reg,
		Mechanism: mech,
		adoption:  make(map[Pair]int),
		rng:       rng,
	}
	for _, s := range adxSpecs {
		ex, ok := reg.FindByName(s.name)
		if !ok {
			panic("rtb: exchange missing from nurl registry: " + s.name)
		}
		scheme := priceenc.MustNew(
			[]byte("enc:"+s.name+":0123456789abcdef"),
			[]byte("sig:"+s.name+":0123456789abcdef"),
		)
		bias := min(max(s.encBias+cfg.EncBiasBoost, 0), 1)
		adx := &ADX{
			Name: s.name, Share: s.share, EncBias: bias,
			Exchange: ex, Scheme: scheme,
		}
		// Each exchange connects to 4–6 DSPs deterministically by seed.
		n := 4 + rng.Intn(3)
		perm := rng.Perm(len(dsps))
		for _, idx := range perm[:n] {
			adx.DSPs = append(adx.DSPs, dsps[idx])
		}
		eco.ADXs = append(eco.ADXs, adx)

		// Adoption schedule: high-bias exchanges' pairs adopt early
		// (month ≤ 1 means "already encrypted entering 2015"); low-bias
		// pairs mostly adopt far beyond the observation year. The spread
		// produces Figure 2's steady within-year growth.
		for _, d := range adx.DSPs {
			var month int
			if rng.Float64() < bias {
				month = 1 + rng.Intn(14) - 2 // −1 .. 12: before or during 2015
			} else {
				month = 13 + rng.Intn(36) // after the observation year
			}
			eco.adoption[Pair{adx.Name, d.Name}] = month + cfg.AdoptionShiftMonths
		}
	}
	eco.adxWeights = make([]float64, len(eco.ADXs))
	for i, a := range eco.ADXs {
		eco.adxWeights[i] = a.Share
	}
	return eco
}

// PairEncrypted reports whether the (adx, dsp) pair delivers encrypted
// prices in the given month (1-based months since Jan 2015; month 13 is
// Jan 2016, …).
func (e *Ecosystem) PairEncrypted(adx, dsp string, month int) bool {
	m, ok := e.adoption[Pair{adx, dsp}]
	if !ok {
		return false
	}
	return month >= m
}

// Pairs returns all ADX-DSP pairs, sorted for determinism.
func (e *Ecosystem) Pairs() []Pair {
	out := make([]Pair, 0, len(e.adoption))
	for p := range e.adoption {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ADX != out[j].ADX {
			return out[i].ADX < out[j].ADX
		}
		return out[i].DSP < out[j].DSP
	})
	return out
}

// EncryptedPairShare returns the fraction of pairs delivering encrypted
// prices in the given month — Figure 2's y-axis.
func (e *Ecosystem) EncryptedPairShare(month int) float64 {
	if len(e.adoption) == 0 {
		return 0
	}
	enc := 0
	for _, m := range e.adoption {
		if month >= m {
			enc++
		}
	}
	return float64(enc) / float64(len(e.adoption))
}

// PickADX samples an exchange proportionally to traffic share.
func (e *Ecosystem) PickADX() *ADX { return e.pickADX(e.rng) }

// pickADX is the share-weighted draw behind every stream. The weights
// slice is precomputed at construction (the roster is read-only after
// NewEcosystem) so the per-impression hot path allocates nothing;
// hand-built ecosystems without the cache fall back to a local copy.
func (e *Ecosystem) pickADX(rng *stats.Rand) *ADX {
	w := e.adxWeights
	if len(w) != len(e.ADXs) {
		w = make([]float64, len(e.ADXs))
		for i, a := range e.ADXs {
			w[i] = a.Share
		}
	}
	return e.ADXs[rng.WeightedChoice(w)]
}

// FindADX returns the exchange with the given name.
func (e *Ecosystem) FindADX(name string) (*ADX, bool) {
	for _, a := range e.ADXs {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// AuctionResult is the outcome of one second-price auction.
type AuctionResult struct {
	ADX       *ADX
	Winner    *DSP
	WinBid    float64 // highest submitted bid, CPM
	ChargeCPM float64 // second-highest bid — the Vickrey charge price
	Encrypted bool    // whether the notification carries an encrypted price
	NURL      string  // the notification URL delivered through the browser
	ImpID     string
	AuctionID string
}

// minBidders guards the Vickrey rule; with a single bidder the reserve
// price (80% of the lone bid) acts as the implicit second bid, the common
// exchange soft-floor policy.
const reserveFraction = 0.8

// mechanism returns the ecosystem's clearing rule, defaulting to the
// Vickrey marketplace for hand-built ecosystems.
func (e *Ecosystem) mechanism() Mechanism {
	if e.Mechanism == nil {
		return SecondPrice{}
	}
	return e.Mechanism
}

// RunAuction executes one auction for ctx on exchange adx during the given
// month (1-based months since Jan 2015) and returns the result, including
// the rendered nURL. The winner's charge follows the ecosystem's
// Mechanism (second-price unless configured otherwise). ok is false when
// no DSP bids (unsold inventory that would fall to backfill, §2.1).
//
// RunAuction draws from the ecosystem's own stream; concurrent callers
// must use NewSession instead.
func (e *Ecosystem) RunAuction(adx *ADX, ctx Context, month int) (AuctionResult, bool) {
	return runAuction(e, adx, ctx, month, e.rng, &e.impSeq, "")
}

// Serve runs the full SSP path for one impression: pick an exchange by
// share, run the auction there during the given month.
func (e *Ecosystem) Serve(ctx Context, month int) (AuctionResult, bool) {
	return e.RunAuction(e.PickADX(), ctx, month)
}

// runAuction is the auction body shared by the ecosystem's own stream
// and per-session streams. tag namespaces impression ids so independent
// sessions never collide ("" keeps the historical single-stream format).
func runAuction(e *Ecosystem, adx *ADX, ctx Context, month int,
	rng *stats.Rand, impSeq *uint64, tag string) (AuctionResult, bool) {
	if len(adx.DSPs) == 0 {
		return AuctionResult{}, false
	}
	type bid struct {
		dsp *DSP
		v   float64
	}
	bids := make([]bid, 0, len(adx.DSPs))
	for _, d := range adx.DSPs {
		// Channel factor applies per pair: encrypting pairs bid on richer
		// (hidden) signals, paper §2.3's higher-value hypothesis.
		bctx := ctx
		bctx.Encrypted = e.PairEncrypted(adx.Name, d.Name, month)
		// A DSP may sit out auctions it has no budget appetite for.
		if rng.Float64() < 0.15 {
			continue
		}
		bids = append(bids, bid{d, d.Bid(e.Market, bctx, rng)})
	}
	if len(bids) == 0 {
		return AuctionResult{}, false
	}
	sort.Slice(bids, func(i, j int) bool { return bids[i].v > bids[j].v })
	win := bids[0]
	runnerUp := 0.0
	if len(bids) > 1 {
		runnerUp = bids[1].v
	}
	charge := e.mechanism().Charge(win.v, runnerUp)
	encrypted := e.PairEncrypted(adx.Name, win.dsp.Name, month)
	if encrypted {
		charge *= e.Market.EncryptedSurcharge
	}
	if charge > win.v {
		charge = win.v // settlement never exceeds the winner's own bid
	}
	// Exchanges settle at micro-CPM precision; truncate here so the
	// published notification and the internal ledger agree exactly.
	charge = float64(int64(charge*1e6)) / 1e6
	if charge <= 0 {
		return AuctionResult{}, false
	}

	*impSeq++
	impID := fmt.Sprintf("i%s%08x", tag, *impSeq)
	aucID := fmt.Sprintf("a%08x", rng.Int63()&0xFFFFFFFF)

	spec := nurl.BuildSpec{
		DSP:       win.dsp.Name,
		Width:     ctx.Slot.W,
		Height:    ctx.Slot.H,
		ImpID:     impID,
		AuctionID: aucID,
		Campaign:  fmt.Sprintf("c%03d", rng.Intn(400)),
		Publisher: ctx.Publisher,
		Currency:  "USD",
		BidCPM:    win.v,
	}
	if encrypted {
		iv := make([]byte, priceenc.IVSize)
		for i := range iv {
			iv[i] = byte(rng.Intn(256))
		}
		tok, err := adx.Scheme.Encrypt(charge, iv)
		if err != nil {
			return AuctionResult{}, false
		}
		spec.Token = tok
	} else {
		spec.PriceCPM = charge
	}
	res := AuctionResult{
		ADX: adx, Winner: win.dsp,
		WinBid: win.v, ChargeCPM: charge,
		Encrypted: encrypted,
		NURL:      nurl.Build(adx.Exchange, spec),
		ImpID:     impID, AuctionID: aucID,
	}
	return res, true
}

// Session is an independent auction stream over a read-only Ecosystem:
// its own RNG, impression counter and impression-id namespace. The
// roster, market model, mechanism and adoption schedule are immutable
// after construction, so any number of sessions may serve auctions
// concurrently — the parallel trace generator gives every user one,
// which is what makes each user's impressions derivable in isolation.
type Session struct {
	eco    *Ecosystem
	rng    *stats.Rand
	impSeq uint64
	tag    string
}

// NewSession returns an auction stream deterministic in seed. tag
// namespaces the session's impression ids ("u0042-" gives
// "iu0042-00000001", …); it must be unique among concurrently live
// sessions for ids to stay globally unique.
func (e *Ecosystem) NewSession(seed int64, tag string) *Session {
	return &Session{eco: e, rng: stats.NewRand(seed), tag: tag}
}

// NewSubstreamSession is NewSession keyed by (seed, streamID) through
// the SplitMix64 substream derivation, for callers that hand out one
// session per entity (per user, per shard) from a single master seed.
func (e *Ecosystem) NewSubstreamSession(seed int64, streamID uint64, tag string) *Session {
	return &Session{eco: e, rng: stats.NewSubstream(seed, streamID), tag: tag}
}

// PickADX samples an exchange proportionally to traffic share from the
// session's stream.
func (s *Session) PickADX() *ADX { return s.eco.pickADX(s.rng) }

// RunAuction executes one auction on adx, drawing from the session's
// private stream.
func (s *Session) RunAuction(adx *ADX, ctx Context, month int) (AuctionResult, bool) {
	return runAuction(s.eco, adx, ctx, month, s.rng, &s.impSeq, s.tag)
}

// Serve runs the full SSP path for one impression within the session.
func (s *Session) Serve(ctx Context, month int) (AuctionResult, bool) {
	return s.RunAuction(s.PickADX(), ctx, month)
}
