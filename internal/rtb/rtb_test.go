package rtb

import (
	"testing"
	"time"

	"yourandvalue/internal/geoip"
	"yourandvalue/internal/iab"
	"yourandvalue/internal/nurl"
	"yourandvalue/internal/stats"
	"yourandvalue/internal/useragent"
)

func baseCtx() Context {
	return Context{
		Time:      time.Date(2015, 6, 10, 10, 0, 0, 0, time.UTC), // Wed morning
		City:      geoip.Malaga,
		OS:        useragent.Android,
		Device:    useragent.Smartphone,
		Origin:    useragent.MobileWeb,
		Publisher: "news.example",
		Category:  iab.News,
		Slot:      Slot300x250,
		UserValue: 1,
	}
}

func TestSlotString(t *testing.T) {
	if Slot300x250.String() != "300x250" || Slot320x50.String() != "320x50" {
		t.Error("slot labels wrong")
	}
	if (Slot{0, 0}).String() != "0x0" {
		t.Error("zero slot label")
	}
	if Slot300x250.Area() != 75000 {
		t.Error("area wrong")
	}
}

func TestFigureSlotsComplete(t *testing.T) {
	if len(FigureSlots) != 17 {
		t.Fatalf("Figure 12 has 17 slot sizes, got %d", len(FigureSlots))
	}
	seen := map[Slot]bool{}
	for _, s := range FigureSlots {
		if seen[s] {
			t.Errorf("duplicate slot %v", s)
		}
		seen[s] = true
		if SlotPopularity(s, 6) <= 0 {
			t.Errorf("slot %v has no popularity", s)
		}
	}
}

// TestSlotRegimeChange verifies the Figure 12 handover: 320x50 dominates
// January; 300x250 dominates December.
func TestSlotRegimeChange(t *testing.T) {
	janBanner := SlotPopularity(Slot320x50, 1)
	janMPU := SlotPopularity(Slot300x250, 1)
	decBanner := SlotPopularity(Slot320x50, 12)
	decMPU := SlotPopularity(Slot300x250, 12)
	if janBanner <= janMPU {
		t.Errorf("January: banner %v should dominate MPU %v", janBanner, janMPU)
	}
	if decMPU <= decBanner {
		t.Errorf("December: MPU %v should dominate banner %v", decMPU, decBanner)
	}
	// May (month 5) is the paper's crossover neighbourhood: MPU should be
	// at least competitive by then.
	if SlotPopularity(Slot300x250, 6) < SlotPopularity(Slot320x50, 6)*0.9 {
		t.Error("MPU should have caught up by mid-year")
	}
	// Out-of-range months clamp rather than panic.
	if SlotPopularity(Slot320x50, 0) != SlotPopularity(Slot320x50, 1) {
		t.Error("month clamp low")
	}
	if SlotPopularity(Slot320x50, 13) != SlotPopularity(Slot320x50, 12) {
		t.Error("month clamp high")
	}
	if SlotPopularity(Slot{1, 1}, 5) != 0 {
		t.Error("unknown slot should have zero popularity")
	}
}

func TestSampleSlot(t *testing.T) {
	rng := stats.NewRand(1)
	counts := map[Slot]int{}
	for i := 0; i < 20000; i++ {
		counts[SampleSlot(1, rng.WeightedChoice)]++
	}
	if counts[Slot320x50] <= counts[Slot300x250] {
		t.Errorf("January sampling: banner %d vs MPU %d", counts[Slot320x50], counts[Slot300x250])
	}
	// Degenerate pick function falls back to the MPU.
	if s := SampleSlot(1, func([]float64) int { return -1 }); s != Slot300x250 {
		t.Errorf("fallback slot = %v", s)
	}
}

func TestStructuralCPMFactors(t *testing.T) {
	m := DefaultMarket()
	base := m.StructuralCPM(baseCtx())
	if base <= 0 {
		t.Fatal("structural price must be positive")
	}

	// App vs web: exactly AppFactor apart (§4.4's 2.6×).
	app := baseCtx()
	app.Origin = useragent.MobileApp
	if got := m.StructuralCPM(app) / base; got < 2.59 || got > 2.61 {
		t.Errorf("app factor = %v, want 2.6", got)
	}

	// Encrypted channel bid-side factor; the settlement surcharge tops the
	// total gap up to ≈1.7× (Fig 16).
	enc := baseCtx()
	enc.Encrypted = true
	if got := m.StructuralCPM(enc) / base; got < 1.14 || got > 1.16 {
		t.Errorf("encrypted bid factor = %v, want 1.15", got)
	}
	if f := m.EncryptedBidFactor * m.EncryptedSurcharge; f < 1.65 || f > 1.75 {
		t.Errorf("combined encrypted factor = %v, want ≈1.7", f)
	}

	// iOS > Android (Fig 10).
	ios := baseCtx()
	ios.OS = useragent.IOS
	if m.StructuralCPM(ios) <= base {
		t.Error("iOS should price above Android")
	}

	// IAB3 ≫ IAB15 (Fig 11).
	biz, sci := baseCtx(), baseCtx()
	biz.Category = iab.Business
	sci.Category = iab.Science
	if m.StructuralCPM(biz) < 10*m.StructuralCPM(sci) {
		t.Errorf("IAB3 %v should be ≫ IAB15 %v",
			m.StructuralCPM(biz), m.StructuralCPM(sci))
	}

	// MPU > large banner despite smaller area (Fig 13).
	mpu, banner := baseCtx(), baseCtx()
	mpu.Slot = Slot300x250
	banner.Slot = Slot320x50
	if m.StructuralCPM(mpu) <= m.StructuralCPM(banner) {
		t.Error("MPU should out-price the 320x50 banner")
	}

	// Monster MPU (300x600): pricier than leaderboard but below MPU.
	monster := baseCtx()
	monster.Slot = Slot300x600
	lead := baseCtx()
	lead.Slot = Slot728x90
	if !(m.StructuralCPM(mpu) > m.StructuralCPM(monster) &&
		m.StructuralCPM(monster) > m.StructuralCPM(lead)) {
		t.Error("Fig 13 ordering MPU > MonsterMPU > leaderboard violated")
	}

	// 2016 shift (§6.2).
	y16 := baseCtx()
	y16.Year2016 = true
	if m.StructuralCPM(y16) <= base {
		t.Error("2016 prices should exceed 2015")
	}

	// User whale multiplier passes straight through.
	whale := baseCtx()
	whale.UserValue = 10
	if got := m.StructuralCPM(whale) / base; got < 9.99 || got > 10.01 {
		t.Errorf("user value factor = %v", got)
	}
}

func TestStructuralCPMGeoTemporal(t *testing.T) {
	m := DefaultMarket()
	// Big-city median below small-town median (Fig 5).
	madrid, torello := baseCtx(), baseCtx()
	madrid.City = geoip.Madrid
	torello.City = geoip.Torello
	if m.StructuralCPM(madrid) >= m.StructuralCPM(torello) {
		t.Error("Madrid median should sit below Torello")
	}
	// …but with wider spread.
	if m.NoiseSpread(madrid) <= m.NoiseSpread(torello) {
		t.Error("Madrid spread should exceed Torello")
	}

	// Morning bin prices above the 20-23 bin (Fig 6).
	morning, night := baseCtx(), baseCtx()
	morning.Time = time.Date(2015, 6, 10, 9, 0, 0, 0, time.UTC)
	night.Time = time.Date(2015, 6, 10, 22, 0, 0, 0, time.UTC)
	if m.StructuralCPM(morning) <= m.StructuralCPM(night) {
		t.Error("morning prices should exceed late evening")
	}

	// Weekday spread above weekend spread (Fig 7).
	wed, sat := baseCtx(), baseCtx()
	wed.Time = time.Date(2015, 6, 10, 12, 0, 0, 0, time.UTC) // Wednesday
	sat.Time = time.Date(2015, 6, 13, 12, 0, 0, 0, time.UTC) // Saturday
	if m.NoiseSpread(wed) <= m.NoiseSpread(sat) {
		t.Error("weekday tails should be wider than weekend")
	}
}

func TestHourBin(t *testing.T) {
	cases := map[int]int{0: 0, 3: 0, 4: 1, 7: 1, 8: 2, 11: 2, 12: 3, 23: 5}
	for h, want := range cases {
		if got := HourBin(h); got != want {
			t.Errorf("HourBin(%d) = %d, want %d", h, got, want)
		}
	}
	if HourBin(-1) != 0 {
		t.Error("negative hour should clamp")
	}
	if HourBinLabel(2) != "08:00-11:00" || HourBinLabel(-1) != "?" {
		t.Error("bin labels")
	}
}

func TestNewEcosystemDeterministic(t *testing.T) {
	a := NewEcosystem(EcosystemConfig{Seed: 42})
	b := NewEcosystem(EcosystemConfig{Seed: 42})
	pa, pb := a.Pairs(), b.Pairs()
	if len(pa) != len(pb) || len(pa) == 0 {
		t.Fatalf("pair counts differ: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("pair sets differ under same seed")
		}
	}
	for m := 1; m <= 12; m++ {
		if a.EncryptedPairShare(m) != b.EncryptedPairShare(m) {
			t.Fatal("adoption schedules differ under same seed")
		}
	}
}

func TestEncryptedPairShareRises(t *testing.T) {
	e := NewEcosystem(EcosystemConfig{Seed: 7})
	jan := e.EncryptedPairShare(1)
	dec := e.EncryptedPairShare(12)
	if dec <= jan {
		t.Errorf("Figure 2 trend violated: Jan %.2f, Dec %.2f", jan, dec)
	}
	for m := 2; m <= 12; m++ {
		if e.EncryptedPairShare(m) < e.EncryptedPairShare(m-1) {
			t.Errorf("share dropped at month %d", m)
		}
	}
	if jan < 0.05 || jan > 0.60 {
		t.Errorf("January share %.2f implausible", jan)
	}
}

func TestADXRoster(t *testing.T) {
	e := NewEcosystem(EcosystemConfig{Seed: 1})
	if len(e.ADXs) != 9 {
		t.Fatalf("expected 9 exchanges, got %d", len(e.ADXs))
	}
	mopub, ok := e.FindADX("MoPub")
	if !ok || mopub.Share < 0.33 || mopub.Share > 0.34 {
		t.Errorf("MoPub share = %v", mopub.Share)
	}
	if _, ok := e.FindADX("NoSuch"); ok {
		t.Error("FindADX should miss unknown names")
	}
	// MoPub must lean cleartext, DoubleClick encrypted (Fig 3).
	dc, _ := e.FindADX("DoubleClick")
	if mopub.EncBias >= dc.EncBias {
		t.Error("encryption bias ordering violated")
	}
	for _, adx := range e.ADXs {
		if len(adx.DSPs) < 4 || len(adx.DSPs) > 6 {
			t.Errorf("%s has %d DSPs, want 4-6", adx.Name, len(adx.DSPs))
		}
	}
}

func TestRunAuctionVickrey(t *testing.T) {
	e := NewEcosystem(EcosystemConfig{Seed: 3})
	adx, _ := e.FindADX("MoPub")
	ctx := baseCtx()
	wins := 0
	for i := 0; i < 500; i++ {
		res, ok := e.RunAuction(adx, ctx, 6)
		if !ok {
			continue
		}
		wins++
		if res.ChargeCPM > res.WinBid {
			t.Fatalf("charge %v exceeds winning bid %v (Vickrey violated)",
				res.ChargeCPM, res.WinBid)
		}
		if res.ChargeCPM <= 0 {
			t.Fatal("non-positive charge")
		}
		if res.Winner == nil || res.ADX != adx {
			t.Fatal("result wiring")
		}
	}
	if wins < 450 {
		t.Errorf("only %d/500 auctions filled", wins)
	}
}

func TestAuctionNURLRoundTrip(t *testing.T) {
	e := NewEcosystem(EcosystemConfig{Seed: 5})
	reg := e.Registry
	ctx := baseCtx()
	sawClr, sawEnc := false, false
	for i := 0; i < 2000 && !(sawClr && sawEnc); i++ {
		res, ok := e.Serve(ctx, 12)
		if !ok {
			continue
		}
		n, ok := reg.Parse(res.NURL)
		if !ok {
			t.Fatalf("unparseable nURL from %s: %s", res.ADX.Name, res.NURL)
		}
		if res.Encrypted {
			sawEnc = true
			if n.Kind != nurl.Encrypted {
				t.Fatalf("encrypted auction produced %v nURL", n.Kind)
			}
			// The issuing exchange can decrypt its own token.
			got, err := res.ADX.Scheme.Decrypt(n.Token)
			if err != nil {
				t.Fatalf("ADX cannot decrypt own token: %v", err)
			}
			if diff := got - res.ChargeCPM; diff > 1e-5 || diff < -1e-5 {
				t.Fatalf("decrypted %v != charge %v", got, res.ChargeCPM)
			}
		} else {
			sawClr = true
			if n.Kind != nurl.Cleartext {
				t.Fatalf("cleartext auction produced %v nURL", n.Kind)
			}
			if diff := n.PriceCPM - res.ChargeCPM; diff > 1e-5 || diff < -1e-5 {
				t.Fatalf("nURL price %v != charge %v", n.PriceCPM, res.ChargeCPM)
			}
		}
	}
	if !sawClr || !sawEnc {
		t.Fatalf("channel coverage: cleartext=%v encrypted=%v", sawClr, sawEnc)
	}
}

func TestEncryptedPricesHigher(t *testing.T) {
	// Across many auctions in late 2015, encrypted notifications should
	// carry clearly higher prices (Fig 16's ≈1.7× median).
	e := NewEcosystem(EcosystemConfig{Seed: 11})
	ctx := baseCtx()
	var clr, enc []float64
	for i := 0; i < 6000; i++ {
		res, ok := e.Serve(ctx, 10)
		if !ok {
			continue
		}
		if res.Encrypted {
			enc = append(enc, res.ChargeCPM)
		} else {
			clr = append(clr, res.ChargeCPM)
		}
	}
	if len(clr) < 100 || len(enc) < 100 {
		t.Fatalf("insufficient coverage: %d clr, %d enc", len(clr), len(enc))
	}
	mClr, _ := stats.Median(clr)
	mEnc, _ := stats.Median(enc)
	ratio := mEnc / mClr
	if ratio < 1.3 || ratio > 2.3 {
		t.Errorf("encrypted/cleartext median ratio = %v, want ≈1.7", ratio)
	}
}

func TestServeShares(t *testing.T) {
	e := NewEcosystem(EcosystemConfig{Seed: 13})
	counts := map[string]int{}
	ctx := baseCtx()
	total := 0
	for i := 0; i < 20000; i++ {
		res, ok := e.Serve(ctx, 6)
		if !ok {
			continue
		}
		counts[res.ADX.Name]++
		total++
	}
	mopubShare := float64(counts["MoPub"]) / float64(total)
	if mopubShare < 0.37 || mopubShare > 0.45 {
		// MoPub holds 33.55% of overall traffic = ~41% of the 9 modeled
		// entities after normalization.
		t.Errorf("MoPub share = %v", mopubShare)
	}
	if counts["Turn"] >= counts["AppNexus"] {
		t.Error("share ordering violated")
	}
}

func TestFactorAccessors(t *testing.T) {
	if CityPriceFactor(geoip.Madrid) >= CityPriceFactor(geoip.Torello) {
		t.Error("city factor accessor")
	}
	if CityPriceFactor(geoip.CityUnknown) != 1 {
		t.Error("unknown city factor should be 1")
	}
	if IABPriceFactor(iab.Business) <= IABPriceFactor(iab.Science) {
		t.Error("iab factor accessor")
	}
	if IABPriceFactor(iab.Unknown) != 1 {
		t.Error("unknown iab factor should be 1")
	}
	if SlotPriceFactor(Slot300x250) <= SlotPriceFactor(Slot320x50) {
		t.Error("slot factor accessor")
	}
	if SlotPriceFactor(Slot{9, 9}) != 1 {
		t.Error("unknown slot factor should be 1")
	}
	if OSPriceFactor(useragent.IOS) <= OSPriceFactor(useragent.Android) {
		t.Error("os factor accessor")
	}
	if OSPriceFactor(useragent.OS(99)) != 1 {
		t.Error("unknown os factor should be 1")
	}
}
