package rtb

import (
	"strings"
	"testing"
)

func TestSecondPriceCharge(t *testing.T) {
	m := SecondPrice{}
	if got := m.Charge(2.0, 1.5); got != 1.5 {
		t.Errorf("charge = %v, want runner-up 1.5", got)
	}
	// Lone bidder pays the reserve fraction of their own bid.
	if got := m.Charge(2.0, 0); got != 2.0*reserveFraction {
		t.Errorf("lone-bidder charge = %v, want %v", got, 2.0*reserveFraction)
	}
	if got := (SecondPrice{ReserveFraction: 0.5}).Charge(2.0, 0); got != 1.0 {
		t.Errorf("custom reserve charge = %v, want 1.0", got)
	}
}

func TestFirstPriceCharge(t *testing.T) {
	m := FirstPrice{}
	for _, runnerUp := range []float64{0, 0.5, 1.9} {
		if got := m.Charge(2.0, runnerUp); got != 2.0 {
			t.Errorf("Charge(2.0, %v) = %v, want the bid itself", runnerUp, got)
		}
	}
}

func TestSoftFloorCharge(t *testing.T) {
	m := SoftFloor{FloorCPM: 1.0}
	// Above the floor: second-price, floored.
	if got := m.Charge(2.0, 1.5); got != 1.5 {
		t.Errorf("above-floor charge = %v, want runner-up", got)
	}
	if got := m.Charge(2.0, 0.4); got != 1.0 {
		t.Errorf("above-floor low-runner-up charge = %v, want floor 1.0", got)
	}
	// Below the floor: first-price.
	if got := m.Charge(0.8, 0.3); got != 0.8 {
		t.Errorf("below-floor charge = %v, want the bid", got)
	}
	// No floor degrades to pure second-price.
	if got := (SoftFloor{}).Charge(2.0, 1.5); got != 1.5 {
		t.Errorf("floorless charge = %v, want second-price", got)
	}
}

func TestMechanismFor(t *testing.T) {
	for _, name := range MechanismNames() {
		m, err := MechanismFor(name, 0.5)
		if err != nil {
			t.Fatalf("MechanismFor(%q): %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("Name() = %q, want %q", m.Name(), name)
		}
	}
	// Empty selects the default.
	if m, err := MechanismFor("", 0); err != nil || m.Name() != "second-price" {
		t.Errorf("default mechanism = %v, %v", m, err)
	}
	if _, err := MechanismFor("dutch", 0); err == nil ||
		!strings.Contains(err.Error(), "dutch") {
		t.Errorf("unknown mechanism error = %v", err)
	}
	if sf, _ := MechanismFor("soft-floor", 0.7); sf.(SoftFloor).FloorCPM != 0.7 {
		t.Error("floor parameter not threaded through")
	}
}

// TestRunAuctionFirstPrice: under a first-price ecosystem every
// cleartext settlement equals the winning bid (modulo the micro-CPM
// truncation); encrypted settlements stay capped at the winning bid.
func TestRunAuctionFirstPrice(t *testing.T) {
	e := NewEcosystem(EcosystemConfig{Seed: 3, Mechanism: FirstPrice{}})
	adx, _ := e.FindADX("MoPub")
	ctx := baseCtx()
	wins := 0
	for i := 0; i < 300; i++ {
		res, ok := e.RunAuction(adx, ctx, 6)
		if !ok {
			continue
		}
		wins++
		if res.ChargeCPM > res.WinBid {
			t.Fatalf("charge %v exceeds winning bid %v", res.ChargeCPM, res.WinBid)
		}
		if !res.Encrypted {
			if diff := res.WinBid - res.ChargeCPM; diff < 0 || diff > 1e-5 {
				t.Fatalf("first-price charge %v != winning bid %v", res.ChargeCPM, res.WinBid)
			}
		}
	}
	if wins < 250 {
		t.Errorf("only %d/300 auctions filled", wins)
	}
}

// TestFirstPriceRaisesRevenue: holding the seed and context fixed, the
// pay-your-bid rule must clear at or above the Vickrey price on every
// auction, so mean revenue strictly rises.
func TestFirstPriceRaisesRevenue(t *testing.T) {
	total := func(m Mechanism) float64 {
		e := NewEcosystem(EcosystemConfig{Seed: 17, Mechanism: m})
		ctx := baseCtx()
		sum := 0.0
		for i := 0; i < 2000; i++ {
			if res, ok := e.Serve(ctx, 6); ok {
				sum += res.ChargeCPM
			}
		}
		return sum
	}
	second := total(SecondPrice{})
	first := total(FirstPrice{})
	if first <= second {
		t.Errorf("first-price revenue %v should exceed second-price %v", first, second)
	}
}

// TestSessionsIndependentAndDeterministic: equal-seed sessions replay
// identical auction streams regardless of what other sessions do in
// between, and their impression ids are namespaced by tag.
func TestSessionsIndependentAndDeterministic(t *testing.T) {
	e := NewEcosystem(EcosystemConfig{Seed: 5})
	ctx := baseCtx()

	run := func(s *Session, n int) []AuctionResult {
		var out []AuctionResult
		for i := 0; i < n; i++ {
			if res, ok := s.Serve(ctx, 6); ok {
				out = append(out, res)
			}
		}
		return out
	}

	a := run(e.NewSession(101, "a-"), 50)
	// Interleave unrelated activity: another session and the ecosystem's
	// own stream must not perturb a replay.
	run(e.NewSession(999, "x-"), 50)
	for i := 0; i < 25; i++ {
		e.Serve(ctx, 6)
	}
	b := run(e.NewSession(101, "a-"), 50)

	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].NURL != b[i].NURL || a[i].ChargeCPM != b[i].ChargeCPM {
			t.Fatal("session replay diverged")
		}
		if !strings.HasPrefix(a[i].ImpID, "ia-") {
			t.Fatalf("impression id %q missing session tag", a[i].ImpID)
		}
	}

	// Substream-keyed sessions: deterministic and distinct across ids.
	s1 := run(e.NewSubstreamSession(7, 1, "u1-"), 20)
	s1b := run(e.NewSubstreamSession(7, 1, "u1-"), 20)
	s2 := run(e.NewSubstreamSession(7, 2, "u2-"), 20)
	if len(s1) != len(s1b) {
		t.Fatal("substream session not deterministic")
	}
	for i := range s1 {
		if s1[i].NURL != s1b[i].NURL {
			t.Fatal("substream session replay diverged")
		}
	}
	if len(s1) == len(s2) {
		same := true
		for i := range s1 {
			if s1[i].ChargeCPM != s2[i].ChargeCPM {
				same = false
				break
			}
		}
		if same {
			t.Error("distinct substream ids produced identical auctions")
		}
	}
}

// TestAdoptionShiftAndBias: the encrypted-surge knobs move Figure 2's
// curve without re-rolling the roster.
func TestAdoptionShiftAndBias(t *testing.T) {
	base := NewEcosystem(EcosystemConfig{Seed: 7})
	surge := NewEcosystem(EcosystemConfig{Seed: 7, EncBiasBoost: 0.5, AdoptionShiftMonths: -6})
	if got, want := len(surge.Pairs()), len(base.Pairs()); got != want {
		t.Fatalf("pair roster changed: %d vs %d", got, want)
	}
	for m := 1; m <= 12; m++ {
		if surge.EncryptedPairShare(m) < base.EncryptedPairShare(m) {
			t.Fatalf("month %d: surge share %.2f below baseline %.2f",
				m, surge.EncryptedPairShare(m), base.EncryptedPairShare(m))
		}
	}
	if surge.EncryptedPairShare(12) <= base.EncryptedPairShare(12) {
		t.Error("surge should lift the year-end encrypted share")
	}
}
