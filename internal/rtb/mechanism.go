package rtb

import (
	"fmt"
	"sort"
)

// Mechanism is the auction clearing rule: given the winning bid and the
// best losing bid, it decides what the winner pays. The paper's world is
// a pure second-price (Vickrey) marketplace — the 2015 ecosystem it
// measured — but the industry has since moved to first-price and
// soft-floor hybrids, so the charge rule is pluggable: the ecosystem,
// the probe sessions and every scenario select a Mechanism instead of
// hardcoding Vickrey.
//
// Charge sees only the bid book; settlement-side adjustments that apply
// to every mechanism alike (the encrypted-channel surcharge, the
// charge ≤ winning-bid cap, micro-CPM truncation) stay in the ecosystem.
type Mechanism interface {
	// Name returns the registry name ("second-price", …).
	Name() string
	// Charge returns the CPM the winner pays. runnerUp is the best losing
	// bid, or 0 when the winner stood alone.
	Charge(winBid, runnerUp float64) float64
}

// SecondPrice is the Vickrey rule the paper's ecosystem runs: the winner
// pays the second-highest bid. A lone bidder pays ReserveFraction of
// their own bid — the common exchange soft-reserve policy standing in
// for the absent second bid.
type SecondPrice struct {
	// ReserveFraction of the lone bid acts as the implicit second bid;
	// zero takes the default 0.8.
	ReserveFraction float64
}

// Name implements Mechanism.
func (SecondPrice) Name() string { return "second-price" }

// Charge implements the Vickrey rule.
func (m SecondPrice) Charge(winBid, runnerUp float64) float64 {
	if runnerUp > 0 {
		return runnerUp
	}
	rf := m.ReserveFraction
	if rf <= 0 {
		rf = reserveFraction
	}
	return winBid * rf
}

// FirstPrice is the pay-your-bid rule that came to dominate programmatic
// exchanges after 2017 (Arrate et al. 2018): the winner pays exactly
// what they bid, regardless of the second bid.
type FirstPrice struct{}

// Name implements Mechanism.
func (FirstPrice) Name() string { return "first-price" }

// Charge implements the pay-your-bid rule.
func (FirstPrice) Charge(winBid, _ float64) float64 { return winBid }

// SoftFloor is the hybrid rule many exchanges ran during the first-price
// transition: bids clearing the floor settle second-price but never
// below the floor; bids under the floor settle first-price. The floor
// thus acts as a price accelerant rather than a hard reserve.
type SoftFloor struct {
	// FloorCPM is the soft floor; non-positive degrades to second-price.
	FloorCPM float64
	// ReserveFraction backs the lone-bidder case below the floor; zero
	// takes the default 0.8.
	ReserveFraction float64
}

// Name implements Mechanism.
func (SoftFloor) Name() string { return "soft-floor" }

// Charge implements the hybrid rule.
func (m SoftFloor) Charge(winBid, runnerUp float64) float64 {
	second := SecondPrice{ReserveFraction: m.ReserveFraction}
	if m.FloorCPM <= 0 || winBid >= m.FloorCPM {
		charge := second.Charge(winBid, runnerUp)
		if charge < m.FloorCPM {
			charge = m.FloorCPM
		}
		return charge
	}
	return winBid
}

// MechanismFor returns the named clearing rule. floorCPM parameterizes
// the mechanisms that price against a floor and is ignored by the rest.
func MechanismFor(name string, floorCPM float64) (Mechanism, error) {
	switch name {
	case "", "second-price":
		return SecondPrice{}, nil
	case "first-price":
		return FirstPrice{}, nil
	case "soft-floor":
		return SoftFloor{FloorCPM: floorCPM}, nil
	default:
		return nil, fmt.Errorf("rtb: unknown auction mechanism %q (have %v)",
			name, MechanismNames())
	}
}

// MechanismNames lists the registered clearing rules, sorted.
func MechanismNames() []string {
	names := []string{"second-price", "first-price", "soft-floor"}
	sort.Strings(names)
	return names
}
