package rtb

import (
	"fmt"
	"sort"

	"yourandvalue/internal/nurl"
	"yourandvalue/internal/priceenc"
	"yourandvalue/internal/stats"
)

// ProbeOutcome is the result of one auction a probing campaign's DSP
// participated in. When the probe wins, ChargeCPM is the Vickrey price
// the campaign pays — and, crucially, the price that appears in the DSP's
// performance report even when the nURL encrypts it. This report channel
// is how the paper obtains ground truth for encrypted prices (§5).
type ProbeOutcome struct {
	Filled    bool    // auction had at least one bid
	Won       bool    // the probe's bid was highest
	ChargeCPM float64 // price the probe pays when Won
	Encrypted bool    // whether the user-side nURL carries an encrypted price
	NURL      string  // the notification delivered through the user's device
}

// ProbeEncrypts reports whether a probing campaign on this exchange will
// receive encrypted price notifications: the §5 campaign design pairs the
// probe DSP with each ADX's prevailing channel (DoubleClick, OpenX,
// Rubicon and PulsePoint encrypt; MoPub does not).
func (a *ADX) ProbeEncrypts() bool { return a.EncBias >= 0.5 }

// ProbeSession runs probe auctions against the ecosystem with its own
// random stream and impression counter. The ecosystem's roster, market
// model and adoption schedule are read-only after construction, so any
// number of sessions may run concurrently — the campaign engine gives the
// A1 and A2 rounds one session each, letting them execute in parallel
// without perturbing each other's draws or the ecosystem's own stream.
type ProbeSession struct {
	eco    *Ecosystem
	rng    *stats.Rand
	impSeq uint64
}

// NewProbeSession returns an independent probe-auction stream over the
// ecosystem, deterministic in seed.
func (e *Ecosystem) NewProbeSession(seed int64) *ProbeSession {
	return &ProbeSession{eco: e, rng: stats.NewRand(seed)}
}

// RunProbeAuction runs a second-price auction on adx with the probe DSP's
// bid competing against the exchange's regular demand, drawing from the
// session's private stream. The probe wins ties.
func (s *ProbeSession) RunProbeAuction(adx *ADX, ctx Context, month int, probeBid float64) ProbeOutcome {
	return runProbeAuction(s.eco, adx, ctx, month, probeBid, s.rng, &s.impSeq)
}

// RunProbeAuction is the legacy single-stream variant: it draws from the
// ecosystem's shared stream, so concurrent callers must use NewProbeSession
// instead. The probe wins ties.
func (e *Ecosystem) RunProbeAuction(adx *ADX, ctx Context, month int, probeBid float64) ProbeOutcome {
	return runProbeAuction(e, adx, ctx, month, probeBid, e.rng, &e.impSeq)
}

func runProbeAuction(e *Ecosystem, adx *ADX, ctx Context, month int, probeBid float64,
	rng *stats.Rand, impSeq *uint64) ProbeOutcome {
	if probeBid <= 0 {
		return ProbeOutcome{}
	}
	// Collect competing demand exactly as a regular auction would.
	var competitors []float64
	for _, d := range adx.DSPs {
		bctx := ctx
		bctx.Encrypted = e.PairEncrypted(adx.Name, d.Name, month)
		if rng.Float64() < 0.15 {
			continue
		}
		competitors = append(competitors, d.Bid(e.Market, bctx, rng))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(competitors)))

	out := ProbeOutcome{Filled: true}
	if len(competitors) > 0 && competitors[0] > probeBid {
		// Probe lost; a regular winner is charged as usual — nothing in
		// the campaign report.
		return out
	}
	out.Won = true
	runnerUp := 0.0
	if len(competitors) > 0 {
		runnerUp = competitors[0]
	}
	charge := e.mechanism().Charge(probeBid, runnerUp)
	out.Encrypted = adx.ProbeEncrypts()
	if out.Encrypted {
		charge *= e.Market.EncryptedSurcharge
	}
	if charge > probeBid {
		charge = probeBid
	}
	charge = float64(int64(charge*1e6)) / 1e6
	if charge <= 0 {
		return ProbeOutcome{Filled: true}
	}
	out.ChargeCPM = charge

	*impSeq++
	spec := nurl.BuildSpec{
		DSP:       "probe-dsp",
		Width:     ctx.Slot.W,
		Height:    ctx.Slot.H,
		ImpID:     fmt.Sprintf("p%08x", *impSeq),
		AuctionID: fmt.Sprintf("a%08x", rng.Int63()&0xFFFFFFFF),
		Publisher: ctx.Publisher,
		Currency:  "USD",
	}
	if out.Encrypted {
		iv := make([]byte, priceenc.IVSize)
		for i := range iv {
			iv[i] = byte(rng.Intn(256))
		}
		tok, err := adx.Scheme.Encrypt(charge, iv)
		if err != nil {
			return ProbeOutcome{Filled: true}
		}
		spec.Token = tok
	} else {
		spec.PriceCPM = charge
	}
	out.NURL = nurl.Build(adx.Exchange, spec)
	return out
}
