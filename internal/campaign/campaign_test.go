package campaign

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"yourandvalue/internal/nurl"
	"yourandvalue/internal/rtb"
	"yourandvalue/internal/stats"
	"yourandvalue/internal/useragent"
	"yourandvalue/internal/weblog"
)

func testEngine() (*Engine, *weblog.Catalog) {
	eco := rtb.NewEcosystem(rtb.EcosystemConfig{Seed: 99})
	return NewEngine(eco), weblog.NewCatalog(60, 30)
}

func TestGridSize(t *testing.T) {
	g := Grid(nil)
	if len(g) != 144 {
		t.Fatalf("Table 5 grid has %d setups, want 144", len(g))
	}
	// All filters must be exercised.
	cities := map[string]bool{}
	origins := map[useragent.Origin]bool{}
	times := map[TimeBin]bool{}
	days := map[bool]bool{}
	devices := map[useragent.DeviceType]bool{}
	oses := map[useragent.OS]bool{}
	adxs := map[string]bool{}
	slots := map[rtb.Slot]bool{}
	for _, s := range g {
		cities[s.City.String()] = true
		origins[s.Origin] = true
		times[s.Time] = true
		days[s.Weekend] = true
		devices[s.Device] = true
		oses[s.OS] = true
		adxs[s.ADX] = true
		slots[s.Slot] = true
		// Device-format coherence: tablet setups use tablet formats.
		if s.Device == useragent.Tablet {
			found := false
			for _, ts := range rtb.TabletSlots {
				if s.Slot == ts {
					found = true
				}
			}
			if !found {
				t.Fatalf("tablet setup with phone format: %v", s)
			}
		}
	}
	if len(cities) != 4 || len(origins) != 2 || len(times) != 3 ||
		len(days) != 2 || len(devices) != 2 || len(oses) != 2 {
		t.Errorf("filter coverage: %d cities %d origins %d times %d days %d devices %d oses",
			len(cities), len(origins), len(times), len(days), len(devices), len(oses))
	}
	if len(adxs) != 5 {
		t.Errorf("exchange coverage: %v", adxs)
	}
	// Table 5 lists three formats per device class, with the interstitial
	// orientations (320x480/480x320, 768x1024/1024x768) counted as one
	// format each: five distinct sizes across both classes.
	if len(slots) != 5 {
		t.Errorf("format coverage: %v", slots)
	}
}

func TestGridDeterministic(t *testing.T) {
	a, b := Grid(nil), Grid(nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("grid not deterministic")
		}
	}
}

func TestSetupString(t *testing.T) {
	s := Setup{
		City: CampaignCities[0], Origin: useragent.MobileApp,
		Time: Night, Weekend: false, Device: useragent.Smartphone,
		OS: useragent.IOS, Slot: rtb.Slot320x50, ADX: "MoPub",
	}
	want := "<Madrid, app, 12am-9am, weekday, Smartphone, iOS, 320x50, MoPub>"
	if got := s.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestTimeBins(t *testing.T) {
	rng := stats.NewRand(1)
	for _, b := range []TimeBin{Night, Daytime, Evening} {
		for i := 0; i < 200; i++ {
			h := b.SampleHour(rng)
			if BinOf(h) != b {
				t.Fatalf("hour %d escaped bin %v", h, b)
			}
		}
	}
	if Night.String() != "12am-9am" || Daytime.String() != "9am-6pm" || Evening.String() != "6pm-12am" {
		t.Error("bin labels")
	}
}

func TestRunSmallCampaign(t *testing.T) {
	eng, cat := testEngine()
	cfg := Config{
		Setups:              Grid(EncryptedADXs)[:12],
		ImpressionsPerSetup: 30,
		MaxBidCPM:           25,
		Catalog:             cat,
		Seed:                5,
	}
	rep, err := eng.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Won < 12*20 {
		t.Errorf("delivered only %d impressions", rep.Won)
	}
	if rep.WinRate() <= 0 || rep.WinRate() > 1 {
		t.Errorf("win rate %v", rep.WinRate())
	}
	if rep.SpentUSD <= 0 {
		t.Error("no spend recorded")
	}
	reg := nurl.Default()
	for _, rec := range rep.Records {
		if rec.ChargeCPM <= 0 {
			t.Fatal("non-positive charge")
		}
		if !rec.Encrypted {
			t.Fatal("A1 exchanges must deliver encrypted notifications")
		}
		n, ok := reg.Parse(rec.NURL)
		if !ok || n.Kind != nurl.Encrypted {
			t.Fatalf("A1 nURL not encrypted: %s", rec.NURL)
		}
		// The user-side token must hide the price, but the exchange's own
		// key must recover exactly what the report says.
		adx, _ := eng.Eco.FindADX(rec.Setup.ADX)
		got, err := adx.Scheme.Decrypt(n.Token)
		if err != nil {
			t.Fatal(err)
		}
		if diff := got - rec.ChargeCPM; diff > 1e-5 || diff < -1e-5 {
			t.Fatalf("report %v != token %v", rec.ChargeCPM, got)
		}
		// Record context coherent with its setup.
		if BinOf(rec.Time.Hour()) != rec.Setup.Time {
			t.Fatalf("record hour %d outside setup bin %v", rec.Time.Hour(), rec.Setup.Time)
		}
		wd := rec.Time.Weekday()
		if (wd == time.Saturday || wd == time.Sunday) != rec.Setup.Weekend {
			t.Fatalf("record day type mismatches setup %v", rec.Setup)
		}
	}
}

func TestA2Cleartext(t *testing.T) {
	eng, cat := testEngine()
	cfg := A2Config(cat, 20, 7)
	cfg.Setups = cfg.Setups[:8]
	rep, err := eng.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := nurl.Default()
	for _, rec := range rep.Records {
		if rec.Encrypted {
			t.Fatal("A2 (MoPub) should deliver cleartext")
		}
		n, ok := reg.Parse(rec.NURL)
		if !ok || n.Kind != nurl.Cleartext {
			t.Fatalf("A2 nURL kind: %v", n.Kind)
		}
		if diff := n.PriceCPM - rec.ChargeCPM; diff > 1e-9 || diff < -1e-9 {
			t.Fatal("cleartext nURL price differs from report")
		}
	}
}

func TestBudgetCap(t *testing.T) {
	eng, cat := testEngine()
	cfg := Config{
		Setups:              Grid(EncryptedADXs),
		ImpressionsPerSetup: 500,
		BudgetUSD:           0.25, // tiny budget: must stop early
		MaxBidCPM:           25,
		Catalog:             cat,
		Seed:                9,
	}
	rep, err := eng.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Budget overshoot bounded by one impression's cost.
	if rep.SpentUSD > 0.25+0.05 {
		t.Errorf("spent %v past the %v budget", rep.SpentUSD, 0.25)
	}
	if rep.Won >= 144*500 {
		t.Error("budget did not stop the campaign")
	}
}

func TestRunValidation(t *testing.T) {
	eng, cat := testEngine()
	if _, err := eng.Run(Config{Catalog: cat}); err != ErrBadConfig {
		t.Error("empty setups accepted")
	}
	if _, err := eng.Run(Config{Setups: Grid(nil), ImpressionsPerSetup: 1}); err != ErrBadConfig {
		t.Error("nil catalog accepted")
	}
	bad := Config{
		Setups:              []Setup{{ADX: "NoSuchADX", City: CampaignCities[0], Slot: rtb.Slot320x50}},
		ImpressionsPerSetup: 1,
		Catalog:             cat,
	}
	if _, err := eng.Run(bad); err == nil {
		t.Error("unknown exchange accepted")
	}
}

// TestEncryptedCampaignPricesHigher reproduces the Figure 15/16 shape at
// campaign scale: A1 (encrypted exchanges) medians exceed A2 (MoPub
// cleartext) medians.
func TestEncryptedCampaignPricesHigher(t *testing.T) {
	eng, cat := testEngine()
	a1, err := eng.Run(Config{
		Setups: Grid(EncryptedADXs)[:24], ImpressionsPerSetup: 40,
		MaxBidCPM: 25, Catalog: cat, Seed: 11,
		Start: time.Date(2016, 5, 2, 0, 0, 0, 0, time.UTC), Days: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := eng.Run(Config{
		Setups: Grid([]string{CleartextADX})[:24], ImpressionsPerSetup: 40,
		MaxBidCPM: 25, Catalog: cat, Seed: 12,
		Start: time.Date(2016, 6, 6, 0, 0, 0, 0, time.UTC), Days: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	m1, _ := stats.Median(a1.Prices())
	m2, _ := stats.Median(a2.Prices())
	if ratio := m1 / m2; ratio < 1.2 {
		t.Errorf("A1/A2 median ratio = %v, want >1.2 (paper ≈1.7)", ratio)
	}
}

func TestRunContextCancelled(t *testing.T) {
	eng, cat := testEngine()
	cfg := Config{
		Setups:              Grid(EncryptedADXs)[:12],
		ImpressionsPerSetup: 30,
		MaxBidCPM:           25,
		Catalog:             cat,
		Seed:                5,
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.RunContext(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestRunContextDeterministicAndConcurrent(t *testing.T) {
	// Two campaigns on one ecosystem, run concurrently, must each equal
	// their sequential selves: probe sessions keep the streams private.
	eng, cat := testEngine()
	mk := func(seed int64) Config {
		return Config{
			Setups:              Grid(EncryptedADXs)[:12],
			ImpressionsPerSetup: 20,
			MaxBidCPM:           25,
			Catalog:             cat,
			Seed:                seed,
		}
	}
	seqA, err := eng.Run(mk(5))
	if err != nil {
		t.Fatal(err)
	}
	seqB, err := eng.Run(mk(9))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var conA, conB *Report
	var errA, errB error
	wg.Add(2)
	go func() { defer wg.Done(); conA, errA = eng.RunContext(context.Background(), mk(5)) }()
	go func() { defer wg.Done(); conB, errB = eng.RunContext(context.Background(), mk(9)) }()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if !reflect.DeepEqual(seqA.Records, conA.Records) {
		t.Error("concurrent A records differ from sequential run")
	}
	if !reflect.DeepEqual(seqB.Records, conB.Records) {
		t.Error("concurrent B records differ from sequential run")
	}
}

func TestPlanImpressions(t *testing.T) {
	// §5.2: error 0.1 CPM at 95% with the within-campaign spread implies a
	// minimum of ~185 impressions; verify the formula's inverse with the
	// paper's largest-campaign spread (back-solved std ≈ 0.694).
	n, err := PlanImpressions(0.694, 0.1, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if n < 180 || n < 1 || n > 195 {
		t.Errorf("planned %d impressions, want ≈185", n)
	}
}
