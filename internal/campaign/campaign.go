// Package campaign implements the probing ad-campaign engine of paper §5:
// small, budget-capped advertising buys whose performance reports expose
// ground-truth charge prices — including for ADXs that encrypt their
// notification URLs. The Table 5 filter grid yields 144 experimental
// setups; §5.2's sample-size arithmetic sizes the buys.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"time"

	"yourandvalue/internal/geoip"
	"yourandvalue/internal/iab"
	"yourandvalue/internal/rtb"
	"yourandvalue/internal/stats"
	"yourandvalue/internal/useragent"
	"yourandvalue/internal/weblog"
)

// TimeBin is Table 5's three-way time-of-day filter.
type TimeBin int

// Table 5 time-of-day ranges.
const (
	Night   TimeBin = iota // 12am-9am
	Daytime                // 9am-6pm
	Evening                // 6pm-12am
)

// String returns the Table 5 label.
func (b TimeBin) String() string {
	switch b {
	case Night:
		return "12am-9am"
	case Daytime:
		return "9am-6pm"
	default:
		return "6pm-12am"
	}
}

// SampleHour draws an hour within the bin.
func (b TimeBin) SampleHour(rng *stats.Rand) int {
	switch b {
	case Night:
		return rng.Intn(9)
	case Daytime:
		return 9 + rng.Intn(9)
	default:
		return 18 + rng.Intn(6)
	}
}

// BinOf maps an hour to its TimeBin.
func BinOf(hour int) TimeBin {
	switch {
	case hour < 9:
		return Night
	case hour < 18:
		return Daytime
	default:
		return Evening
	}
}

// Setup is one experimental configuration of Table 5: the control
// variables <user location, web-interaction type, time of day, day of
// week, device type, OS, ad-size, ADX>.
type Setup struct {
	City    geoip.City
	Origin  useragent.Origin // MobileApp or MobileWeb
	Time    TimeBin
	Weekend bool
	Device  useragent.DeviceType
	OS      useragent.OS
	Slot    rtb.Slot
	ADX     string
}

// String renders the setup like the paper's example
// "<Madrid, app, 12am-9am, weekday, smartphone, iOS, 320x50, MoPub>".
func (s Setup) String() string {
	day := "weekday"
	if s.Weekend {
		day = "weekend"
	}
	return fmt.Sprintf("<%s, %s, %s, %s, %s, %s, %s, %s>",
		s.City, originShort(s.Origin), s.Time, day,
		s.Device, s.OS, s.Slot, s.ADX)
}

func originShort(o useragent.Origin) string {
	if o == useragent.MobileApp {
		return "app"
	}
	return "web"
}

// CampaignCities are Table 5's four target cities.
var CampaignCities = []geoip.City{
	geoip.Madrid, geoip.Barcelona, geoip.Valencia, geoip.Seville,
}

// EncryptedADXs are the §5 round-A1 exchanges delivering encrypted prices.
var EncryptedADXs = []string{"DoubleClick", "OpenX", "Rubicon", "PulsePoint"}

// CleartextADX is the §5 round-A2 exchange (MoPub, the top mobile ADX).
const CleartextADX = "MoPub"

// Grid enumerates the 144 experimental setups of Table 5: the full cross
// of 4 cities × 2 interaction types × 3 time bins × 2 day types × 3
// ad-formats, with device type, OS and exchange rotated deterministically
// across the grid (running the full cross of every filter would cost
// thousands of setups; §5.1's point is precisely that this subset
// suffices).
func Grid(adxs []string) []Setup {
	if len(adxs) == 0 {
		adxs = append(append([]string(nil), EncryptedADXs...), CleartextADX)
	}
	var out []Setup
	i := 0
	for _, city := range CampaignCities {
		for _, origin := range []useragent.Origin{useragent.MobileApp, useragent.MobileWeb} {
			for _, tb := range []TimeBin{Night, Daytime, Evening} {
				for _, weekend := range []bool{false, true} {
					for fi := 0; fi < 3; fi++ {
						dev := useragent.Smartphone
						if i%2 == 1 {
							dev = useragent.Tablet
						}
						os := useragent.Android
						if i%4 >= 2 {
							os = useragent.IOS
						}
						var slot rtb.Slot
						if dev == useragent.Smartphone {
							slot = rtb.SmartphoneSlots[fi]
						} else {
							slot = rtb.TabletSlots[fi]
						}
						out = append(out, Setup{
							City: city, Origin: origin, Time: tb,
							Weekend: weekend, Device: dev, OS: os,
							Slot: slot, ADX: adxs[i%len(adxs)],
						})
						i++
					}
				}
			}
		}
	}
	return out
}

// Record is one delivered probe impression: the setup that bought it, the
// context it rendered in, and the charge price from the DSP performance
// report (known even when the user-side notification was encrypted).
type Record struct {
	Setup     Setup
	Time      time.Time
	Publisher string
	Category  iab.Category
	ChargeCPM float64
	Encrypted bool
	NURL      string
}

// Report is a completed campaign's outcome.
type Report struct {
	Records   []Record
	SpentUSD  float64
	Attempted int // auctions entered
	Won       int // impressions delivered
	Setups    int // setups attempted
}

// WinRate returns delivered / attempted.
func (r *Report) WinRate() float64 {
	if r.Attempted == 0 {
		return 0
	}
	return float64(r.Won) / float64(r.Attempted)
}

// Prices extracts the charge prices of all records.
func (r *Report) Prices() []float64 {
	out := make([]float64, len(r.Records))
	for i, rec := range r.Records {
		out[i] = rec.ChargeCPM
	}
	return out
}

// Config controls a campaign run.
type Config struct {
	// Setups to execute (e.g. Grid(...)).
	Setups []Setup
	// ImpressionsPerSetup is the delivery target per setup; §5.2 derives
	// a 185-impression minimum for ±0.1 CPM at 95% confidence.
	ImpressionsPerSetup int
	// BudgetUSD caps total spend ("a small budget of a few hundred
	// dollars"); 0 means unlimited.
	BudgetUSD float64
	// MaxBidCPM is the bid ceiling the DSP is given "to safeguard that
	// the allocated budget will not be consumed quickly".
	MaxBidCPM float64
	// Start and Days place the campaign in time (A1: 13 days May 2016;
	// A2: 8 days June 2016).
	Start time.Time
	Days  int
	// Catalog supplies publishers to target; categories span "all IABs
	// possible".
	Catalog *weblog.Catalog
	// Seed drives the run.
	Seed int64
}

// Engine executes campaigns against a simulated ecosystem.
type Engine struct {
	Eco *rtb.Ecosystem
}

// NewEngine returns an Engine over the ecosystem.
func NewEngine(eco *rtb.Ecosystem) *Engine { return &Engine{Eco: eco} }

// ErrBadConfig reports invalid campaign parameters.
var ErrBadConfig = errors.New("campaign: invalid configuration")

// Run executes the campaign: for every setup it enters auctions with a
// dynamically adjusted bid ("bid in a dynamic manner, as low or high as
// needed to get the minimum of impressions delivered") until the setup's
// impression target, the auction cap, or the budget is exhausted.
func (e *Engine) Run(cfg Config) (*Report, error) {
	return e.RunContext(context.Background(), cfg)
}

// probeStreamSalt decorrelates the auction-demand stream from the
// setup-sampling stream, which both derive from cfg.Seed.
const probeStreamSalt = 0x5E3779B97F4A7C15

// RunContext executes the campaign like Run, honoring ctx: cancellation
// is checked before every auction attempt, so a campaign aborts promptly
// mid-round. Auction demand is drawn from a probe session private to this
// call, so independent campaigns (the pipeline's A1 and A2 rounds) may
// run concurrently over one ecosystem and remain deterministic in their
// seeds.
func (e *Engine) RunContext(ctx context.Context, cfg Config) (*Report, error) {
	if len(cfg.Setups) == 0 || cfg.ImpressionsPerSetup <= 0 || cfg.Catalog == nil {
		return nil, ErrBadConfig
	}
	if cfg.MaxBidCPM <= 0 {
		cfg.MaxBidCPM = 20
	}
	if cfg.Days <= 0 {
		cfg.Days = 13
	}
	if cfg.Start.IsZero() {
		cfg.Start = time.Date(2016, 5, 2, 0, 0, 0, 0, time.UTC)
	}
	rng := stats.NewRand(cfg.Seed)
	session := e.Eco.NewProbeSession(cfg.Seed ^ probeStreamSalt)
	rep := &Report{Setups: len(cfg.Setups)}

	for _, setup := range cfg.Setups {
		adx, ok := e.Eco.FindADX(setup.ADX)
		if !ok {
			return nil, fmt.Errorf("campaign: unknown exchange %q", setup.ADX)
		}
		bid := cfg.MaxBidCPM / 4 // opening bid level
		delivered := 0
		attempts := 0
		maxAttempts := cfg.ImpressionsPerSetup * 6
		for delivered < cfg.ImpressionsPerSetup && attempts < maxAttempts {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if cfg.BudgetUSD > 0 && rep.SpentUSD >= cfg.BudgetUSD {
				return rep, nil // budget exhausted mid-campaign
			}
			attempts++
			rep.Attempted++
			ts := sampleTime(rng, cfg.Start, cfg.Days, setup)
			prop := sampleProperty(rng, cfg.Catalog, setup.Origin)
			rctx := rtb.Context{
				Time:      ts,
				City:      setup.City,
				OS:        setup.OS,
				Device:    setup.Device,
				Origin:    setup.Origin,
				Publisher: prop.Domain,
				Category:  prop.Category,
				Slot:      setup.Slot,
				UserValue: rng.LogNormal(-0.045, 0.30),
				Year2016:  cfg.Start.Year() >= 2016,
			}
			month := (cfg.Start.Year()-2015)*12 + int(ts.Month())
			out := session.RunProbeAuction(adx, rctx, month, bid)
			if !out.Won {
				// Raise the bid toward the ceiling when losing.
				bid *= 1.15
				if bid > cfg.MaxBidCPM {
					bid = cfg.MaxBidCPM
				}
				continue
			}
			// Winning comfortably: ease the bid down to save budget.
			bid *= 0.97
			delivered++
			rep.Won++
			rep.SpentUSD += out.ChargeCPM / 1000
			rep.Records = append(rep.Records, Record{
				Setup: setup, Time: ts,
				Publisher: prop.Domain, Category: prop.Category,
				ChargeCPM: out.ChargeCPM, Encrypted: out.Encrypted,
				NURL: out.NURL,
			})
		}
	}
	return rep, nil
}

func sampleTime(rng *stats.Rand, start time.Time, days int, s Setup) time.Time {
	for tries := 0; ; tries++ {
		day := rng.Intn(days)
		ts := start.AddDate(0, 0, day)
		wd := ts.Weekday()
		isWeekend := wd == time.Saturday || wd == time.Sunday
		if isWeekend == s.Weekend || tries > 20 {
			hour := s.Time.SampleHour(rng)
			return time.Date(ts.Year(), ts.Month(), ts.Day(), hour,
				rng.Intn(60), rng.Intn(60), 0, time.UTC)
		}
	}
}

func sampleProperty(rng *stats.Rand, cat *weblog.Catalog, origin useragent.Origin) weblog.Property {
	if origin == useragent.MobileApp && len(cat.Apps) > 0 {
		return cat.Apps[rng.Intn(len(cat.Apps))]
	}
	return cat.Sites[rng.Intn(len(cat.Sites))]
}

// PlanImpressions applies §5.2's sample-size rule: the minimum impressions
// per campaign so the mean charge price is within margin CPM at the given
// confidence, assuming the observed within-campaign spread.
func PlanImpressions(std, margin, confidence float64) (int, error) {
	return stats.SampleSizeForMean(std, margin, confidence)
}

// A1Config returns the §5.3 first-round configuration: the Table 5 grid
// over the four encrypting exchanges, 13 days starting May 2016.
func A1Config(catalog *weblog.Catalog, perSetup int, seed int64) Config {
	return Config{
		Setups:              Grid(EncryptedADXs),
		ImpressionsPerSetup: perSetup,
		MaxBidCPM:           25,
		Start:               time.Date(2016, 5, 2, 0, 0, 0, 0, time.UTC),
		Days:                13,
		Catalog:             catalog,
		Seed:                seed,
	}
}

// A2Config returns the §5.3 second-round configuration: the same grid
// but exclusively on MoPub (cleartext), 8 days in June 2016.
func A2Config(catalog *weblog.Catalog, perSetup int, seed int64) Config {
	return Config{
		Setups:              Grid([]string{CleartextADX}),
		ImpressionsPerSetup: perSetup,
		MaxBidCPM:           25,
		Start:               time.Date(2016, 6, 6, 0, 0, 0, 0, time.UTC),
		Days:                8,
		Catalog:             catalog,
		Seed:                seed + 1,
	}
}
