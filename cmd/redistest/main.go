// Command redistest serves the in-process mini RESP2 server on a TCP
// listener — the hermetic stand-in for a real Redis that the fleet
// smoke tests and local multi-replica experiments point their
// -store redis:// URLs at. It implements exactly the command subset the
// redisstore backend uses (strings, lists, SET NX PX leases, pub/sub)
// with no persistence and no external dependencies.
//
// Usage:
//
//	redistest [-listen 127.0.0.1:6379]
//
// The resolved store URL is printed on stdout once the listener is
// bound, so scripts can capture it:
//
//	URL=$(redistest -listen 127.0.0.1:0 | head -1)
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"yourandvalue/internal/store/redistest"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:6379", "TCP listen address (port 0 picks a free port)")
	flag.Parse()

	srv, err := redistest.Serve(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "redistest:", err)
		os.Exit(1)
	}
	fmt.Println(srv.URL())
	fmt.Fprintf(os.Stderr, "redistest: serving RESP2 on %s (ctrl-c to stop)\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	srv.Close()
}
