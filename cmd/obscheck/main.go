// Command obscheck is the CI probe for a running pme server's
// observability surface. It polls GET /readyz until the server reports
// ready (the bootstrap pipeline has published a model), then scrapes
// GET /metrics, runs the exposition through the strict obs parser, and
// asserts the families a healthy server must export — so a boot that
// serves garbage telemetry fails the build even though the process is
// up and answering 200s.
//
// Usage:
//
//	obscheck [-base http://127.0.0.1:8700] [-timeout 5m]
//	         [-require pme_model_version,go_goroutines]
//
// Exit codes: 0 checks passed, 1 a check failed or the server never
// became ready.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"yourandvalue/internal/obs"
)

// defaultRequired is the family set every served pme process exports:
// model lifecycle, pool, per-route request series, the inference
// batcher (on by default in cmd/pme; disabling it via -batch-max 0
// needs an adjusted -require list), and the runtime collector. Retrain
// series are also always registered (the retrainer starts with the
// server), so their absence means lost instrumentation.
var defaultRequired = []string{
	"pme_model_version",
	"pme_model_publishes_total",
	"pme_pool_depth",
	"pme_http_requests_total",
	"pme_http_request_duration_seconds",
	"pme_batcher_queue_depth",
	"pme_batcher_requests_total",
	"pme_batcher_rows_total",
	"pme_batcher_flushes_total",
	"pme_batcher_flush_rows",
	"pme_batcher_queue_wait_seconds",
	"go_goroutines",
	"process_uptime_seconds",
}

func main() {
	base := flag.String("base", "http://127.0.0.1:8700", "base URL of the pme server")
	timeout := flag.Duration("timeout", 5*time.Minute, "how long to wait for /readyz before giving up")
	require := flag.String("require", "", "comma-separated metric families that must be present (adds to the built-in set)")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	if err := waitReady(ctx, *base); err != nil {
		fail("server never became ready: %v", err)
	}
	fmt.Printf("obscheck: %s/readyz is ready\n", *base)

	fams, err := scrape(ctx, *base)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("obscheck: /metrics parsed: %d families\n", len(fams))

	required := append([]string{}, defaultRequired...)
	for _, name := range strings.Split(*require, ",") {
		if name = strings.TrimSpace(name); name != "" {
			required = append(required, name)
		}
	}
	failed := false
	for _, name := range required {
		fam, ok := obs.FindFamily(fams, name)
		if !ok {
			fmt.Fprintf(os.Stderr, "obscheck: FAIL: family %q missing from /metrics\n", name)
			failed = true
			continue
		}
		if len(fam.Samples) == 0 {
			fmt.Fprintf(os.Stderr, "obscheck: FAIL: family %q has no samples\n", name)
			failed = true
		}
	}

	// A ready server has, by definition, published at least one model.
	if fam, ok := obs.FindFamily(fams, "pme_model_version"); ok {
		if v, ok := fam.Sample(nil); !ok || v < 1 {
			fmt.Fprintln(os.Stderr, "obscheck: FAIL: ready server exports pme_model_version < 1")
			failed = true
		} else {
			fmt.Printf("obscheck: model version %d is live\n", int64(v))
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("obscheck: all checks passed")
}

// waitReady polls /readyz until it answers 200. Connection refusals and
// 503s are both "not yet": the probe usually races the process bind.
func waitReady(ctx context.Context, base string) error {
	client := &http.Client{Timeout: 5 * time.Second}
	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
	var last string
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/readyz", nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err == nil {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			last = fmt.Sprintf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
		} else {
			last = err.Error()
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("%w (last: %s)", ctx.Err(), last)
		case <-tick.C:
		}
	}
}

func scrape(ctx context.Context, base string) ([]obs.Family, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		return nil, fmt.Errorf("GET /metrics: content type %q, want text/plain exposition", ct)
	}
	fams, err := obs.ParseText(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("/metrics exposition rejected by parser: %w", err)
	}
	return fams, nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "obscheck: FAIL: "+format+"\n", args...)
	os.Exit(1)
}
