// Command adanalyzer runs the Weblog Ads Analyzer over a synthetic trace
// and prints the dataset summary (paper Table 3) plus traffic-class and
// ad-entity breakdowns — the §4 bootstrap view of the data.
//
// Usage:
//
//	adanalyzer [-scale 0.1] [-seed 1]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"

	"yourandvalue"
	"yourandvalue/internal/nurl"
	"yourandvalue/internal/trafficclass"
)

func main() {
	scale := flag.Float64("scale", 0.10, "fraction of paper-scale dataset (0,1]")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	pipe, err := yourandvalue.NewPipeline(
		yourandvalue.WithScale(*scale),
		yourandvalue.WithSeed(*seed),
	)
	exitOn(err)
	fmt.Fprintf(os.Stderr, "generating trace at scale %.2f...\n", *scale)
	tr, err := pipe.GenerateTrace(ctx)
	exitOn(err)
	trace := tr.Trace
	res, err := pipe.Analyze(ctx, tr)
	exitOn(err)

	fmt.Printf("requests analyzed:    %d\n", len(trace.Requests))
	fmt.Printf("users:                %d\n", len(res.Users))
	fmt.Printf("RTB impressions:      %d\n", len(res.Impressions))
	fmt.Printf("RTB publishers:       %d\n", len(res.Publishers))
	fmt.Printf("ADX-DSP pairs:        %d\n", len(res.Pairs))

	fmt.Println("\ntraffic classes:")
	for _, c := range []trafficclass.Class{
		trafficclass.Advertising, trafficclass.Analytics, trafficclass.Social,
		trafficclass.ThirdPartyContent, trafficclass.Rest,
	} {
		fmt.Printf("  %-18s %d\n", c, res.ClassCounts[c])
	}

	clr, enc := 0, 0
	byADX := map[string]int{}
	for _, imp := range res.Impressions {
		byADX[imp.Notification.ADX]++
		if imp.Notification.Kind == nurl.Encrypted {
			enc++
		} else {
			clr++
		}
	}
	fmt.Printf("\nprice notifications:  %d cleartext, %d encrypted (%.1f%% encrypted)\n",
		clr, enc, 100*float64(enc)/float64(max(clr+enc, 1)))

	fmt.Println("\nad entities by RTB share:")
	names := make([]string, 0, len(byADX))
	for n := range byADX {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return byADX[names[i]] > byADX[names[j]] })
	for _, n := range names {
		fmt.Printf("  %-12s %6d (%.2f%%)\n", n, byADX[n],
			100*float64(byADX[n])/float64(len(res.Impressions)))
	}

	fmt.Println("\nencrypted ADX-DSP pair share by month:")
	for m := 1; m <= 12; m++ {
		fmt.Printf("  %02d: %.1f%%\n", m, 100*res.EncryptedPairShare(m))
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
