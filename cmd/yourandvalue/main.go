// Command yourandvalue is the CLI counterpart of the paper's browser
// extension (§3.3): it follows one user's traffic stream, tallies their
// cleartext charge prices, estimates the encrypted ones with the PME
// model, and reports the running total advertisers paid for them.
//
// Usage:
//
//	yourandvalue [-user -1] [-scale 0.05] [-seed 1] [-pme http://...]
//
// With -user -1 (default) the busiest user in the trace is followed.
// When -pme is given the model is fetched from a running pme server
// (conditionally, via the v2 API); otherwise a model is trained locally
// from a probing campaign first.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"yourandvalue"
	"yourandvalue/internal/campaign"
	"yourandvalue/internal/core"
	"yourandvalue/internal/pmeserver"
)

func main() {
	userID := flag.Int("user", -1, "user id to follow (-1 = busiest)")
	scale := flag.Float64("scale", 0.05, "trace scale")
	seed := flag.Int64("seed", 1, "simulation seed")
	pmeURL := flag.String("pme", "", "PME server base URL (optional)")
	verbose := flag.Bool("v", false, "print every price event")
	flag.Parse()

	// Ctrl-C cancels the pipeline between stages, and mid-stage inside
	// the campaign and estimation stages.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	pipe, err := yourandvalue.NewPipeline(
		yourandvalue.WithScale(*scale),
		yourandvalue.WithSeed(*seed),
	)
	exitOn(err)
	tr, err := pipe.GenerateTrace(ctx)
	exitOn(err)

	var model *core.Model
	if *pmeURL != "" {
		fmt.Fprintf(os.Stderr, "fetching model from %s...\n", *pmeURL)
		m, _, err := pmeserver.NewClient(*pmeURL).FetchModelV2(ctx, "")
		exitOn(err)
		model = m
	} else {
		fmt.Fprintln(os.Stderr, "training local model from probing campaigns...")
		eng := campaign.NewEngine(tr.Ecosystem)
		a1, err := eng.RunContext(ctx, campaign.A1Config(tr.Trace.Catalog, 40, *seed+2))
		exitOn(err)
		pme := core.NewPME(*seed + 4)
		pme.CVFolds, pme.CVRuns = 5, 1
		model, err = pme.Train(a1.Records, core.TrainConfig{})
		exitOn(err)
	}

	// The analyzer pass is only needed to pick a default subject.
	if *userID < 0 {
		res, err := pipe.Analyze(ctx, tr)
		exitOn(err)
		*userID = res.BusiestUser()
	}
	if *userID < 0 {
		fmt.Fprintln(os.Stderr, "error: trace has no users")
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "following user %d\n", *userID)

	client := core.NewClient(model, tr.Trace.Catalog.Directory())
	for _, r := range tr.Trace.Requests {
		if r.UserID != *userID {
			continue
		}
		ev, ok := client.Process(r)
		if !ok {
			continue
		}
		if *verbose {
			kind := "cleartext"
			if ev.Encrypted {
				kind = "encrypted(est)"
			}
			fmt.Printf("%s  %-12s %-14s %8.4f CPM  running total %8.2f CPM\n",
				ev.Time.Format("2006-01-02 15:04"), ev.ADX, kind, ev.CPM,
				client.Totals().TotalCPM())
		}
	}

	tot := client.Totals()
	fmt.Printf("\n=== YourAdValue report for user %d ===\n", *userID)
	fmt.Printf("cleartext prices observed:   %4d  → %8.2f CPM\n",
		tot.CleartextCount, tot.CleartextCPM)
	fmt.Printf("encrypted prices estimated:  %4d  → %8.2f CPM\n",
		tot.EncryptedCount, tot.EncryptedCPM)
	fmt.Printf("total advertiser cost Vu(T):       %8.2f CPM\n", tot.TotalCPM())
	fmt.Printf("total (time-corrected):            %8.2f CPM\n", tot.TotalCorrectedCPM())
	fmt.Printf("extrapolated annual value:         $%.2f\n",
		core.ExtrapolateAnnualUSD(tot.TotalCPM()))
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
