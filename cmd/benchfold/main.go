// Command benchfold folds raw `go test -bench` output into a persisted
// bench artifact (the BENCH_*.json trajectory files CI commits and
// uploads). It reads benchmark lines from stdin or -in, parses them with
// the same strict parser internal/scaletest uses for its own artifacts,
// and writes a schema-stamped artifact — so the inference perf numbers
// live next to the load-harness numbers in one diffable format.
//
// Usage:
//
//	go test -run xxx -bench BenchmarkForestPredict -benchmem ./internal/mlkit | benchfold -out BENCH_inference.json
//	benchfold -in bench.txt -out BENCH_inference.json
//
// Exit codes: 0 artifact written, 1 no benchmark lines found or a
// parse/write failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"yourandvalue/internal/scaletest"
)

func main() {
	in := flag.String("in", "", "bench output file (default stdin)")
	out := flag.String("out", "BENCH_inference.json", "artifact path to write")
	flag.Parse()

	if err := run(*in, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchfold:", err)
		os.Exit(1)
	}
}

func run(in, out string) error {
	var r io.Reader = os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	art, err := fold(r)
	if err != nil {
		return err
	}
	if err := art.WriteFile(out); err != nil {
		return err
	}
	fmt.Printf("benchfold: %d benchmarks -> %s\n", len(art.GoBench), out)
	return nil
}

// fold parses bench lines into a fresh artifact, rejecting empty input:
// a bench step that produced nothing must fail CI, not commit an empty
// trajectory point.
func fold(r io.Reader) (*scaletest.Artifact, error) {
	results, err := scaletest.ParseGoBench(r)
	if err != nil {
		return nil, err
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark lines in input")
	}
	art := scaletest.NewArtifact()
	art.GoBench = results
	return art, nil
}
