package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"yourandvalue/internal/scaletest"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: yourandvalue/internal/mlkit
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkForestPredict/pointer-8         	  500000	      2100 ns/op	       0 B/op	       0 allocs/op
BenchmarkForestPredict/flat-8            	 2000000	       400 ns/op	       0 B/op	       0 allocs/op
BenchmarkForestPredict/flat-batch-512-8  	   10000	    110000 ns/op	       215 ns/vec	       0 B/op	       0 allocs/op
PASS
ok  	yourandvalue/internal/mlkit	12.3s
`

func TestFold(t *testing.T) {
	art, err := fold(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if art.Schema != scaletest.ArtifactSchema {
		t.Errorf("schema %q", art.Schema)
	}
	if len(art.GoBench) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(art.GoBench))
	}
	flat := art.GoBench[1]
	if flat.Name != "BenchmarkForestPredict/flat" || flat.Procs != 8 {
		t.Errorf("parsed %+v", flat)
	}
	if flat.AllocsPerOp == nil || *flat.AllocsPerOp != 0 {
		t.Errorf("allocs/op = %v, want explicit 0", flat.AllocsPerOp)
	}
}

func TestFoldRejectsEmpty(t *testing.T) {
	if _, err := fold(strings.NewReader("PASS\nok\n")); err == nil {
		t.Fatal("empty bench output accepted")
	}
}

func TestRunWritesArtifact(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	out := filepath.Join(dir, "BENCH_test.json")
	if err := os.WriteFile(in, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(in, out); err != nil {
		t.Fatal(err)
	}
	art, err := scaletest.ReadArtifact(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(art.GoBench) != 3 {
		t.Errorf("round-tripped %d benchmarks", len(art.GoBench))
	}
}
