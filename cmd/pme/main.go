// Command pme bootstraps the Price Modeling Engine — runs the probing
// ad-campaigns, trains the encrypted-price model, publishes it into a
// versioned model registry, and serves it over HTTP for YourAdValue
// clients (paper §3.2). While serving, a retrain loop drains the
// crowdsourced contribution pool into forest retraining and hot-swaps
// each new version in atomically; clients observe refreshes as ETag
// changes on their next conditional poll.
//
// The process serves first and trains second: the listener binds
// immediately so /healthz, /readyz, and /metrics are reachable during
// the bootstrap, and /readyz flips from 503 to 200 the moment the
// pipeline publishes the first model. Telemetry — bootstrap stage
// timings, model lifecycle, retrain loop, per-route request series —
// flows through one obs registry scraped at GET /metrics.
//
// Usage:
//
//	pme [-listen :8700] [-scale 0.05] [-per-setup 60] [-seed 1] [-once]
//	    [-retrain-count 500] [-retrain-interval 30s] [-rate 0] [-burst 256]
//	    [-pprof] [-trace-spans 0] [-log-requests]
//
// With -once the trained model's metrics are printed and the process
// exits without serving (useful in scripts). -rate enables the token-
// bucket limiter (requests/second; 0 = unlimited). -pprof mounts
// net/http/pprof under /debug/pprof/. -trace-spans > 0 records that
// many server-side request spans, served at GET /debug/trace.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"yourandvalue"
	"yourandvalue/internal/obs"
	"yourandvalue/internal/obs/trace"
	"yourandvalue/internal/pme"
	"yourandvalue/internal/pmeserver"
)

func main() {
	listen := flag.String("listen", ":8700", "HTTP listen address")
	scale := flag.Float64("scale", 0.05, "bootstrap weblog scale")
	perSetup := flag.Int("per-setup", 60, "campaign impressions per setup")
	seed := flag.Int64("seed", 1, "simulation seed")
	once := flag.Bool("once", false, "train, print metrics, and exit")
	retrainCount := flag.Int("retrain-count", 500, "contributions that trigger a retrain")
	retrainEvery := flag.Duration("retrain-interval", 30*time.Second, "how often the retrain trigger is checked")
	rate := flag.Float64("rate", 0, "token-bucket request rate limit in req/s (0 = unlimited)")
	burst := flag.Int("burst", 256, "token-bucket burst capacity")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	traceSpans := flag.Int("trace-spans", 0, "record up to this many server-side request spans (0 = off); GET /debug/trace exports them")
	logRequests := flag.Bool("log-requests", false, "log one structured line per request (with trace IDs)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	// The registry is the hand-off point between training and serving:
	// the pipeline publishes into it, the server serves from it, and the
	// retrain loop hot-swaps new versions through it. The obs registry is
	// the telemetry counterpart — pipeline, server, and retrainer all
	// report through it onto one /metrics scrape.
	registry := pme.NewRegistry()
	telemetry := obs.NewRegistry()

	pipe, err := yourandvalue.NewPipeline(
		yourandvalue.WithScale(*scale),
		yourandvalue.WithSeed(*seed),
		yourandvalue.WithCampaignImpressions(*perSetup),
		yourandvalue.WithCrossValidation(10, 1),
		yourandvalue.WithModelRegistry(registry),
		yourandvalue.WithObservability(telemetry),
		yourandvalue.WithProgress(func(ev yourandvalue.StageEvent) {
			if ev.State == yourandvalue.StageCompleted {
				logger.Info("stage done", "stage", string(ev.Stage), "elapsed", ev.Elapsed.Round(1e6).String())
			}
		}),
	)
	exitOn(err)

	var hs *http.Server
	var srv *pmeserver.Server
	if !*once {
		// Serve before training: bind the listener now so orchestrators
		// can watch /readyz flip once the bootstrap pipeline publishes.
		opts := []pmeserver.Option{
			pmeserver.WithRegistry(registry),
			pmeserver.WithObsRegistry(telemetry),
		}
		if *rate > 0 {
			opts = append(opts, pmeserver.WithRateLimit(*rate, *burst))
		}
		if *pprofOn {
			opts = append(opts, pmeserver.WithPprof())
		}
		if *traceSpans > 0 {
			opts = append(opts, pmeserver.WithTracer(trace.NewTracer(*traceSpans)))
		}
		if *logRequests {
			opts = append(opts, pmeserver.WithLogger(logger))
		}
		srv, err = pmeserver.New(nil, opts...)
		exitOn(err)

		ln, err := net.Listen("tcp", *listen)
		exitOn(err)
		hs = &http.Server{Handler: srv.Handler()}
		go func() { _ = hs.Serve(ln) }()
		logger.Info("listening (not ready until the model is trained)",
			"addr", ln.Addr().String(), "metrics", "/metrics", "ready", "/readyz")
	}

	// The model needs campaigns plus the analyzed weblog (its cleartext
	// 2015 reference drives the §6.2 time-shift coefficient); the cost
	// stage is not needed to serve, so run the stages individually.
	tr, err := pipe.GenerateTrace(ctx)
	exitOn(err)
	res, err := pipe.Analyze(ctx, tr)
	exitOn(err)
	logger.Info("running probing ad-campaigns (A1 encrypted, A2 cleartext, in parallel)")
	camps, err := pipe.RunCampaigns(ctx, tr)
	exitOn(err)
	logger.Info("campaigns done",
		"a1_records", len(camps.A1.Records), "a1_spent_usd", fmt.Sprintf("%.2f", camps.A1.SpentUSD),
		"a2_records", len(camps.A2.Records), "a2_spent_usd", fmt.Sprintf("%.2f", camps.A2.SpentUSD))
	model, err := pipe.TrainModel(ctx, res, camps) // publishes into the registry → /readyz flips
	exitOn(err)

	m := model.Metrics
	fmt.Printf("model trained: %d classes, %d records (published as version %d)\n",
		m.Classes, m.TrainSize, model.Version)
	fmt.Printf("  accuracy  %.1f%%   (paper 82.9%%)\n", 100*m.Accuracy)
	fmt.Printf("  FP rate   %.1f%%   (paper 6.8%%)\n", 100*m.FPRate)
	fmt.Printf("  precision %.1f%%   (paper 83.5%%)\n", 100*m.Precision)
	fmt.Printf("  AUC-ROC   %.3f   (paper 0.964)\n", m.AUCROC)
	fmt.Printf("  time-shift coefficient %.3f\n", model.TimeShift)
	if *once {
		return
	}

	// Close the crowdsourcing loop: drain contributions into retraining.
	retrainer := pme.NewRetrainer(registry, srv.Pool(), pme.RetrainConfig{
		MinSamples: *retrainCount,
		Interval:   *retrainEvery,
		Seed:       *seed + 100,
	})
	retrainer.Log = func(format string, args ...any) {
		logger.Info(fmt.Sprintf(format, args...))
	}
	pme.InstrumentRetrainer(telemetry, retrainer)
	go func() { _ = retrainer.Run(ctx) }()

	logger.Info("serving model",
		"addr", *listen,
		"routes", "GET /v1/model, GET /v2/model [ETag], POST /v2/contribute, POST /v2/estimate[/stream], GET /v2/stats, GET /metrics")
	<-ctx.Done()
	shCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		exitOn(err)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
