// Command pme bootstraps the Price Modeling Engine — runs the probing
// ad-campaigns, trains the encrypted-price model, and serves it over HTTP
// for YourAdValue clients (paper §3.2).
//
// Usage:
//
//	pme [-listen :8700] [-per-setup 60] [-seed 1] [-once]
//
// With -once the trained model's metrics are printed and the process
// exits without serving (useful in scripts).
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"yourandvalue/internal/analyzer"
	"yourandvalue/internal/campaign"
	"yourandvalue/internal/core"
	"yourandvalue/internal/pmeserver"
	"yourandvalue/internal/rtb"
	"yourandvalue/internal/weblog"
)

func main() {
	listen := flag.String("listen", ":8700", "HTTP listen address")
	perSetup := flag.Int("per-setup", 60, "campaign impressions per setup")
	seed := flag.Int64("seed", 1, "simulation seed")
	once := flag.Bool("once", false, "train, print metrics, and exit")
	flag.Parse()

	eco := rtb.NewEcosystem(rtb.EcosystemConfig{Seed: *seed + 1})
	catalog := weblog.NewCatalog(300, 150)

	fmt.Fprintln(os.Stderr, "running probing ad-campaigns (A1 encrypted, A2 cleartext)...")
	eng := campaign.NewEngine(eco)
	a1, err := eng.Run(campaign.A1Config(catalog, *perSetup, *seed+2))
	exitOn(err)
	a2, err := eng.Run(campaign.A2Config(catalog, *perSetup, *seed+3))
	exitOn(err)
	fmt.Fprintf(os.Stderr, "A1: %d records ($%.2f); A2: %d records ($%.2f)\n",
		len(a1.Records), a1.SpentUSD, len(a2.Records), a2.SpentUSD)

	// A small weblog supplies the 2015 cleartext reference for the
	// time-shift coefficient.
	wcfg := weblog.DefaultConfig().Scaled(0.05)
	wcfg.Seed = *seed
	wcfg.Ecosystem = eco
	trace := weblog.Generate(wcfg)
	res := analyzer.New(trace.Catalog.Directory()).Analyze(trace.Requests)

	pme := core.NewPME(*seed + 4)
	pme.CVRuns = 1
	model, err := pme.Train(a1.Records, core.TrainConfig{
		CleartextReference2015: res.CleartextPrices(func(i analyzer.Impression) bool {
			return i.Notification.ADX == campaign.CleartextADX
		}),
		CleartextCampaign: a2.Records,
	})
	exitOn(err)

	m := model.Metrics
	fmt.Printf("model trained: %d classes, %d records\n", m.Classes, m.TrainSize)
	fmt.Printf("  accuracy  %.1f%%   (paper 82.9%%)\n", 100*m.Accuracy)
	fmt.Printf("  FP rate   %.1f%%   (paper 6.8%%)\n", 100*m.FPRate)
	fmt.Printf("  precision %.1f%%   (paper 83.5%%)\n", 100*m.Precision)
	fmt.Printf("  AUC-ROC   %.3f   (paper 0.964)\n", m.AUCROC)
	fmt.Printf("  time-shift coefficient %.3f\n", model.TimeShift)
	if *once {
		return
	}

	srv, err := pmeserver.New(model)
	exitOn(err)
	fmt.Fprintf(os.Stderr, "serving model on %s (GET /v1/model, POST /v1/contribute)\n", *listen)
	exitOn(http.ListenAndServe(*listen, srv.Handler()))
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
