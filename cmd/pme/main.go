// Command pme bootstraps the Price Modeling Engine — runs the probing
// ad-campaigns, trains the encrypted-price model, publishes it into a
// versioned model registry, and serves it over HTTP for YourAdValue
// clients (paper §3.2). While serving, a retrain loop drains the
// crowdsourced contribution pool into forest retraining and hot-swaps
// each new version in atomically; clients observe refreshes as ETag
// changes on their next conditional poll.
//
// The process serves first and trains second: the listener binds
// immediately so /healthz, /readyz, and /metrics are reachable during
// the bootstrap, and /readyz flips from 503 to 200 the moment the
// pipeline publishes the first model. Telemetry — bootstrap stage
// timings, model lifecycle, retrain loop, per-route request series —
// flows through one obs registry scraped at GET /metrics.
//
// With -store the process becomes one replica of a fleet: model
// lineage, the contribution pool, and the retrainer-singleton lease
// live in the shared store (redis://host:port, or mem:// for one-process
// testing). Exactly one replica wins the bootstrap lease and trains;
// the others adopt the published model through the store's hot-swap
// notifications and /readyz additionally reflects store health.
//
// Usage:
//
//	pme [-listen :8700] [-scale 0.05] [-per-setup 60] [-seed 1] [-once]
//	    [-retrain-count 500] [-retrain-interval 30s] [-rate 0] [-burst 256]
//	    [-batch-max 256] [-batch-window 250us] [-quantized]
//	    [-store redis://127.0.0.1:6379] [-replica-id pme-1] [-lease-ttl 10s]
//	    [-pprof] [-trace-spans 0] [-log-requests]
//
// With -once the trained model's metrics are printed and the process
// exits without serving (useful in scripts; with -store it seeds the
// shared store). -rate enables the token-bucket limiter (requests/
// second; 0 = unlimited). -pprof mounts net/http/pprof under
// /debug/pprof/. -trace-spans > 0 records that many server-side request
// spans, served at GET /debug/trace.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"yourandvalue"
	"yourandvalue/internal/core"
	"yourandvalue/internal/obs"
	"yourandvalue/internal/obs/trace"
	"yourandvalue/internal/pme"
	"yourandvalue/internal/pmeserver"
	"yourandvalue/internal/store"

	// Store backends register their URL schemes on import.
	_ "yourandvalue/internal/store/memstore"
	_ "yourandvalue/internal/store/redisstore"
)

func main() {
	listen := flag.String("listen", ":8700", "HTTP listen address")
	scale := flag.Float64("scale", 0.05, "bootstrap weblog scale")
	perSetup := flag.Int("per-setup", 60, "campaign impressions per setup")
	seed := flag.Int64("seed", 1, "simulation seed")
	once := flag.Bool("once", false, "train, print metrics, and exit")
	retrainCount := flag.Int("retrain-count", 500, "contributions that trigger a retrain")
	retrainEvery := flag.Duration("retrain-interval", 30*time.Second, "how often the retrain trigger is checked")
	rate := flag.Float64("rate", 0, "token-bucket request rate limit in req/s (0 = unlimited)")
	burst := flag.Int("burst", 256, "token-bucket burst capacity")
	batchMax := flag.Int("batch-max", pme.DefaultBatchMaxRows, "inference batcher flush threshold in rows (0 disables cross-request batching; note obscheck's default families expect it on)")
	batchWindow := flag.Duration("batch-window", pme.DefaultBatchWindow, "inference batcher deadline: max queue wait when all flush slots are busy")
	quantized := flag.Bool("quantized", false, "route forest walks through the 8-byte-node quantized engine (bit-identical; halves the traversal working set)")
	storeURL := flag.String("store", "", "shared persistence store URL (redis://host:port or mem://); empty = single-process in-memory")
	replicaID := flag.String("replica-id", "", "stable replica identity for fleet leases and logs (default: random)")
	leaseTTL := flag.Duration("lease-ttl", 10*time.Second, "fleet retrain-lease TTL (renewed at a third of it)")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	traceSpans := flag.Int("trace-spans", 0, "record up to this many server-side request spans (0 = off); GET /debug/trace exports them")
	logRequests := flag.Bool("log-requests", false, "log one structured line per request (with trace IDs)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	// The registry is the hand-off point between training and serving:
	// the pipeline publishes into it, the server serves from it, and the
	// retrain loop hot-swaps new versions through it. In fleet mode the
	// registry becomes a read-through cache of the shared store, fed by
	// the replica's watch loop. The obs registry is the telemetry
	// counterpart — pipeline, server, store, and retrainer all report
	// through it onto one /metrics scrape.
	registry := pme.NewRegistry()
	telemetry := obs.NewRegistry()

	fleet := *storeURL != ""
	var replica *pme.Replica
	publishOpt := yourandvalue.WithModelRegistry(registry)
	if fleet {
		raw, err := store.Open(*storeURL)
		exitOn(err)
		st := store.Instrumented(raw, telemetry)
		defer st.Close()
		ropts := []pme.ReplicaOption{
			pme.WithLeaseTTL(*leaseTTL),
			pme.WithReplicaLog(func(format string, args ...any) {
				logger.Info(fmt.Sprintf(format, args...))
			}),
		}
		if *replicaID != "" {
			ropts = append(ropts, pme.WithReplicaID(*replicaID))
		}
		replica = pme.NewReplica(st, registry, ropts...)
		pme.InstrumentReplica(telemetry, replica)
		publishOpt = yourandvalue.WithModelPublisher(replica)
		logger.Info("fleet mode", "store", st.Name(), "replica", replica.ID(), "lease_ttl", leaseTTL.String())
	}

	pipe, err := yourandvalue.NewPipeline(
		yourandvalue.WithScale(*scale),
		yourandvalue.WithSeed(*seed),
		yourandvalue.WithCampaignImpressions(*perSetup),
		yourandvalue.WithCrossValidation(10, 1),
		publishOpt,
		yourandvalue.WithObservability(telemetry),
		yourandvalue.WithProgress(func(ev yourandvalue.StageEvent) {
			if ev.State == yourandvalue.StageCompleted {
				logger.Info("stage done", "stage", string(ev.Stage), "elapsed", ev.Elapsed.Round(1e6).String())
			}
		}),
	)
	exitOn(err)

	var hs *http.Server
	var srv *pmeserver.Server
	if !*once {
		// Serve before training: bind the listener now so orchestrators
		// can watch /readyz flip once the bootstrap pipeline publishes.
		opts := []pmeserver.Option{
			pmeserver.WithRegistry(registry),
			pmeserver.WithObsRegistry(telemetry),
		}
		var coreOpts []pme.CoreOption
		if *batchMax > 0 {
			coreOpts = append(coreOpts, pme.WithBatcher(pme.BatcherConfig{
				MaxBatch: *batchMax,
				MaxWait:  *batchWindow,
			}))
		}
		if *quantized {
			coreOpts = append(coreOpts, pme.WithQuantizedInference())
		}
		if len(coreOpts) > 0 {
			opts = append(opts, pmeserver.WithCoreOptions(coreOpts...))
		}
		if fleet {
			// Contributions pool in the shared store, and readiness
			// additionally tracks store health: an unreachable store (or
			// no version seen yet) reads 503 and recovers without a
			// restart.
			opts = append(opts,
				pmeserver.WithPoolBackend(replica.Pool()),
				pmeserver.WithReadiness(replica.Ready),
			)
		}
		if *rate > 0 {
			opts = append(opts, pmeserver.WithRateLimit(*rate, *burst))
		}
		if *pprofOn {
			opts = append(opts, pmeserver.WithPprof())
		}
		if *traceSpans > 0 {
			opts = append(opts, pmeserver.WithTracer(trace.NewTracer(*traceSpans)))
		}
		if *logRequests {
			opts = append(opts, pmeserver.WithLogger(logger))
		}
		srv, err = pmeserver.New(nil, opts...)
		exitOn(err)

		ln, err := net.Listen("tcp", *listen)
		exitOn(err)
		hs = &http.Server{Handler: srv.Handler()}
		go func() { _ = hs.Serve(ln) }()
		logger.Info("listening (not ready until a model is published)",
			"addr", ln.Addr().String(), "metrics", "/metrics", "ready", "/readyz")
	}

	// The model needs campaigns plus the analyzed weblog (its cleartext
	// 2015 reference drives the §6.2 time-shift coefficient); the cost
	// stage is not needed to serve, so run the stages individually.
	runPipeline := func(pctx context.Context) (*core.Model, error) {
		tr, err := pipe.GenerateTrace(pctx)
		if err != nil {
			return nil, err
		}
		res, err := pipe.Analyze(pctx, tr)
		if err != nil {
			return nil, err
		}
		logger.Info("running probing ad-campaigns (A1 encrypted, A2 cleartext, in parallel)")
		camps, err := pipe.RunCampaigns(pctx, tr)
		if err != nil {
			return nil, err
		}
		logger.Info("campaigns done",
			"a1_records", len(camps.A1.Records), "a1_spent_usd", fmt.Sprintf("%.2f", camps.A1.SpentUSD),
			"a2_records", len(camps.A2.Records), "a2_spent_usd", fmt.Sprintf("%.2f", camps.A2.SpentUSD))
		return pipe.TrainModel(pctx, res, camps) // publishes → /readyz flips
	}

	if fleet {
		replica.Start(ctx) // watch the store: adopt published versions
		exitOn(bootstrapFleet(ctx, replica, logger, runPipeline))
		if snap := replica.Current(); snap != nil {
			printModel(snap.Model)
		}
	} else {
		model, err := runPipeline(ctx)
		exitOn(err)
		printModel(model)
	}
	if *once {
		return
	}

	// Close the crowdsourcing loop: drain contributions into retraining.
	// In fleet mode the retrainer runs only while this replica holds the
	// store's lease, so exactly one replica trains at a time and a
	// deposed holder's late publish is fenced out by the store.
	cfg := pme.RetrainConfig{
		MinSamples: *retrainCount,
		Interval:   *retrainEvery,
		Seed:       *seed + 100,
	}
	if fleet {
		retrainer := pme.NewRetrainerWith(replica, replica.Pool(), cfg)
		retrainer.Log = func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...))
		}
		pme.InstrumentRetrainer(telemetry, retrainer)
		go func() { _ = replica.RunWithLease(ctx, retrainer.Run) }()
	} else {
		retrainer := pme.NewRetrainerWith(registry, srv.Pool(), cfg)
		retrainer.Log = func(format string, args ...any) {
			logger.Info(fmt.Sprintf(format, args...))
		}
		pme.InstrumentRetrainer(telemetry, retrainer)
		go func() { _ = retrainer.Run(ctx) }()
	}

	logger.Info("serving model",
		"addr", *listen,
		"routes", "GET /v1/model, GET /v2/model [ETag], POST /v2/contribute, POST /v2/estimate[/stream], GET /v2/stats, GET /metrics")
	<-ctx.Done()
	shCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := hs.Shutdown(shCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		exitOn(err)
	}
	// Drain the inference batcher after the listener stops: queued
	// estimates complete, later ones fall back to the direct walk.
	_ = srv.Close()
}

// errBootstrapDone ends the lease loop once a model is available.
var errBootstrapDone = errors.New("bootstrap complete")

// bootstrapFleet makes sure a model exists in the store: adopt one if a
// peer already published it, otherwise race for the lease — the winner
// runs the training pipeline (publishing through the replica, fenced),
// the losers keep cycling until the watch loop adopts the result. The
// expensive bootstrap runs at most once per fleet, not once per
// replica.
func bootstrapFleet(ctx context.Context, replica *pme.Replica, logger *slog.Logger, train func(context.Context) (*core.Model, error)) error {
	if err := replica.SyncOnce(ctx); err == nil && replica.Current() != nil {
		logger.Info("adopted existing fleet model, skipping bootstrap training",
			"version", replica.Current().Version, "etag", replica.Current().ETag)
		return nil
	}
	err := replica.RunWithLease(ctx, func(lctx context.Context) error {
		// Double-check under the lease: a peer may have finished while
		// this replica waited to acquire.
		_ = replica.SyncOnce(lctx)
		if replica.Current() != nil {
			return errBootstrapDone
		}
		logger.Info("won the bootstrap lease, training the initial model", "replica", replica.ID())
		if _, err := train(lctx); err != nil {
			return err
		}
		return errBootstrapDone
	})
	if err != nil && !errors.Is(err, errBootstrapDone) {
		return err
	}
	if ctx.Err() != nil {
		return nil
	}
	// Not the trainer: wait for the watch loop to adopt the winner's
	// publish (RunWithLease returned because fn saw a model, so this is
	// immediate in practice).
	for replica.Current() == nil && ctx.Err() == nil {
		time.Sleep(50 * time.Millisecond)
	}
	return nil
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pme:", err)
		os.Exit(1)
	}
}

func printModel(model *core.Model) {
	m := model.Metrics
	fmt.Printf("model trained: %d classes, %d records (published as version %d)\n",
		m.Classes, m.TrainSize, model.Version)
	fmt.Printf("  accuracy  %.1f%%   (paper 82.9%%)\n", 100*m.Accuracy)
	fmt.Printf("  FP rate   %.1f%%   (paper 6.8%%)\n", 100*m.FPRate)
	fmt.Printf("  precision %.1f%%   (paper 83.5%%)\n", 100*m.Precision)
	fmt.Printf("  AUC-ROC   %.3f   (paper 0.964)\n", m.AUCROC)
	fmt.Printf("  time-shift coefficient %.3f\n", model.TimeShift)
}
