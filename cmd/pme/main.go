// Command pme bootstraps the Price Modeling Engine — runs the probing
// ad-campaigns, trains the encrypted-price model, publishes it into a
// versioned model registry, and serves it over HTTP for YourAdValue
// clients (paper §3.2). While serving, a retrain loop drains the
// crowdsourced contribution pool into forest retraining and hot-swaps
// each new version in atomically; clients observe refreshes as ETag
// changes on their next conditional poll.
//
// Usage:
//
//	pme [-listen :8700] [-scale 0.05] [-per-setup 60] [-seed 1] [-once]
//	    [-retrain-count 500] [-retrain-interval 30s] [-rate 0] [-burst 256]
//
// With -once the trained model's metrics are printed and the process
// exits without serving (useful in scripts). -rate enables the token-
// bucket limiter (requests/second; 0 = unlimited).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"yourandvalue"
	"yourandvalue/internal/pme"
	"yourandvalue/internal/pmeserver"
)

func main() {
	listen := flag.String("listen", ":8700", "HTTP listen address")
	scale := flag.Float64("scale", 0.05, "bootstrap weblog scale")
	perSetup := flag.Int("per-setup", 60, "campaign impressions per setup")
	seed := flag.Int64("seed", 1, "simulation seed")
	once := flag.Bool("once", false, "train, print metrics, and exit")
	retrainCount := flag.Int("retrain-count", 500, "contributions that trigger a retrain")
	retrainEvery := flag.Duration("retrain-interval", 30*time.Second, "how often the retrain trigger is checked")
	rate := flag.Float64("rate", 0, "token-bucket request rate limit in req/s (0 = unlimited)")
	burst := flag.Int("burst", 256, "token-bucket burst capacity")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// The registry is the hand-off point between training and serving:
	// the pipeline publishes into it, the server serves from it, and the
	// retrain loop hot-swaps new versions through it.
	registry := pme.NewRegistry()

	pipe, err := yourandvalue.NewPipeline(
		yourandvalue.WithScale(*scale),
		yourandvalue.WithSeed(*seed),
		yourandvalue.WithCampaignImpressions(*perSetup),
		yourandvalue.WithCrossValidation(10, 1),
		yourandvalue.WithModelRegistry(registry),
		yourandvalue.WithProgress(func(ev yourandvalue.StageEvent) {
			if ev.State == yourandvalue.StageCompleted {
				fmt.Fprintf(os.Stderr, "stage %-15s done in %s\n", ev.Stage, ev.Elapsed.Round(1e6))
			}
		}),
	)
	exitOn(err)

	// The model needs campaigns plus the analyzed weblog (its cleartext
	// 2015 reference drives the §6.2 time-shift coefficient); the cost
	// stage is not needed to serve, so run the stages individually.
	tr, err := pipe.GenerateTrace(ctx)
	exitOn(err)
	res, err := pipe.Analyze(ctx, tr)
	exitOn(err)
	fmt.Fprintln(os.Stderr, "running probing ad-campaigns (A1 encrypted, A2 cleartext, in parallel)...")
	camps, err := pipe.RunCampaigns(ctx, tr)
	exitOn(err)
	fmt.Fprintf(os.Stderr, "A1: %d records ($%.2f); A2: %d records ($%.2f)\n",
		len(camps.A1.Records), camps.A1.SpentUSD, len(camps.A2.Records), camps.A2.SpentUSD)
	model, err := pipe.TrainModel(ctx, res, camps) // publishes into the registry
	exitOn(err)

	m := model.Metrics
	fmt.Printf("model trained: %d classes, %d records (published as version %d)\n",
		m.Classes, m.TrainSize, model.Version)
	fmt.Printf("  accuracy  %.1f%%   (paper 82.9%%)\n", 100*m.Accuracy)
	fmt.Printf("  FP rate   %.1f%%   (paper 6.8%%)\n", 100*m.FPRate)
	fmt.Printf("  precision %.1f%%   (paper 83.5%%)\n", 100*m.Precision)
	fmt.Printf("  AUC-ROC   %.3f   (paper 0.964)\n", m.AUCROC)
	fmt.Printf("  time-shift coefficient %.3f\n", model.TimeShift)
	if *once {
		return
	}

	opts := []pmeserver.Option{pmeserver.WithRegistry(registry)}
	if *rate > 0 {
		opts = append(opts, pmeserver.WithRateLimit(*rate, *burst))
	}
	srv, err := pmeserver.New(nil, opts...)
	exitOn(err)

	// Close the crowdsourcing loop: drain contributions into retraining.
	logger := log.New(os.Stderr, "", log.LstdFlags)
	retrainer := pme.NewRetrainer(registry, srv.Pool(), pme.RetrainConfig{
		MinSamples: *retrainCount,
		Interval:   *retrainEvery,
		Seed:       *seed + 100,
	})
	retrainer.Log = logger.Printf
	go func() { _ = retrainer.Run(ctx) }()

	fmt.Fprintf(os.Stderr,
		"serving model on %s (GET /v1/model, GET /v2/model [ETag], POST /v2/contribute, POST /v2/estimate[/stream], GET /v2/stats)\n",
		*listen)
	hs := &http.Server{Addr: *listen, Handler: srv.Handler()}
	go func() {
		<-ctx.Done()
		shCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = hs.Shutdown(shCtx)
	}()
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		exitOn(err)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
