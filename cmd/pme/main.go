// Command pme bootstraps the Price Modeling Engine — runs the probing
// ad-campaigns, trains the encrypted-price model, and serves it over HTTP
// for YourAdValue clients (paper §3.2).
//
// Usage:
//
//	pme [-listen :8700] [-scale 0.05] [-per-setup 60] [-seed 1] [-once]
//
// With -once the trained model's metrics are printed and the process
// exits without serving (useful in scripts).
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"

	"yourandvalue"
	"yourandvalue/internal/pmeserver"
)

func main() {
	listen := flag.String("listen", ":8700", "HTTP listen address")
	scale := flag.Float64("scale", 0.05, "bootstrap weblog scale")
	perSetup := flag.Int("per-setup", 60, "campaign impressions per setup")
	seed := flag.Int64("seed", 1, "simulation seed")
	once := flag.Bool("once", false, "train, print metrics, and exit")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	pipe, err := yourandvalue.NewPipeline(
		yourandvalue.WithScale(*scale),
		yourandvalue.WithSeed(*seed),
		yourandvalue.WithCampaignImpressions(*perSetup),
		yourandvalue.WithCrossValidation(10, 1),
		yourandvalue.WithProgress(func(ev yourandvalue.StageEvent) {
			if ev.State == yourandvalue.StageCompleted {
				fmt.Fprintf(os.Stderr, "stage %-15s done in %s\n", ev.Stage, ev.Elapsed.Round(1e6))
			}
		}),
	)
	exitOn(err)

	// The model needs campaigns plus the analyzed weblog (its cleartext
	// 2015 reference drives the §6.2 time-shift coefficient); the cost
	// stage is not needed to serve, so run the stages individually.
	tr, err := pipe.GenerateTrace(ctx)
	exitOn(err)
	res, err := pipe.Analyze(ctx, tr)
	exitOn(err)
	fmt.Fprintln(os.Stderr, "running probing ad-campaigns (A1 encrypted, A2 cleartext, in parallel)...")
	camps, err := pipe.RunCampaigns(ctx, tr)
	exitOn(err)
	fmt.Fprintf(os.Stderr, "A1: %d records ($%.2f); A2: %d records ($%.2f)\n",
		len(camps.A1.Records), camps.A1.SpentUSD, len(camps.A2.Records), camps.A2.SpentUSD)
	model, err := pipe.TrainModel(ctx, res, camps)
	exitOn(err)

	m := model.Metrics
	fmt.Printf("model trained: %d classes, %d records\n", m.Classes, m.TrainSize)
	fmt.Printf("  accuracy  %.1f%%   (paper 82.9%%)\n", 100*m.Accuracy)
	fmt.Printf("  FP rate   %.1f%%   (paper 6.8%%)\n", 100*m.FPRate)
	fmt.Printf("  precision %.1f%%   (paper 83.5%%)\n", 100*m.Precision)
	fmt.Printf("  AUC-ROC   %.3f   (paper 0.964)\n", m.AUCROC)
	fmt.Printf("  time-shift coefficient %.3f\n", model.TimeShift)
	if *once {
		return
	}

	srv, err := pmeserver.New(model)
	exitOn(err)
	fmt.Fprintf(os.Stderr,
		"serving model on %s (GET /v1/model, GET /v2/model [ETag], POST /v2/contribute, POST /v2/estimate)\n",
		*listen)
	exitOn(http.ListenAndServe(*listen, srv.Handler()))
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
