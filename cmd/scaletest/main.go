// scaletest is the repo's load-testing CLI, modeled on coder/coder's
// scaletest: named workload strategies drive a pmeserver the way a
// deployed extension fleet would, per-strategy SLO gates turn latency
// and error budgets into exit codes CI can gate on, a concurrency ramp
// finds the knee of the throughput curve, and every run can persist a
// schema-versioned BENCH_*.json artifact so the perf trajectory is
// tracked instead of folklore.
//
// Fixed-fleet run of two strategies against an in-process server:
//
//	go run ./cmd/scaletest -strategy estimate-heavy,stream-heavy -clients 16 -duration 10s
//
// Ramp the mixed fleet 2→4→8 clients and report the knee:
//
//	go run ./cmd/scaletest -strategy mixed -ramp 2,4,8 -step-duration 5s
//
// Gate on an SLO (exit code 2 on violation, distinct from hard
// failures' 1) and keep the artifact:
//
//	go run ./cmd/scaletest -strategy estimate-heavy -slo-p99 50ms -out BENCH_scaletest.json
//
// Record request-level spans (NDJSON, OpenTelemetry-style parent links,
// server-side spans included when self-hosting) for SLO debugging:
//
//	go run ./cmd/scaletest -strategy mixed -trace-out spans.ndjson
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"yourandvalue/internal/pme"
	"yourandvalue/internal/pmeserver"
	"yourandvalue/internal/scaletest"
	"yourandvalue/internal/scenario"
	"yourandvalue/internal/store"

	// Store backends register their URL schemes on import.
	_ "yourandvalue/internal/store/memstore"
	_ "yourandvalue/internal/store/redisstore"
)

func main() {
	addr := flag.String("addr", "", "base URL of a running pmeserver (comma-separated list for -strategy fleet); empty starts in-process")
	strategy := flag.String("strategy", "mixed",
		"comma-separated workload strategies, or 'all'; one of: "+strings.Join(scaletest.Strategies(), ", ")+
			"; or 'fleet' for the multi-replica consistency/propagation run (see -store, -fleet-replicas)")
	list := flag.Bool("list", false, "list workload strategies and exit")
	clients := flag.Int("clients", 16, "fleet size for fixed (non-ramp) runs")
	duration := flag.Duration("duration", 10*time.Second, "wall-clock cap for fixed runs")
	ramp := flag.String("ramp", "", "comma-separated client counts (e.g. 2,4,8); empty = fixed run")
	rampTo := flag.Int("ramp-to", 0, "ramp geometrically (doubling from 2) up to this client count")
	stepDur := flag.Duration("step-duration", 5*time.Second, "wall-clock cap per ramp step")
	stepOps := flag.Int64("step-maxops", 0, "op budget per ramp step (0 = until step duration)")
	maxOps := flag.Int64("maxops", 0, "total op budget for fixed runs (0 = until duration)")
	batch := flag.Int("batch", 32, "stream events per client operation cycle")
	scen := flag.String("scenario", "baseline",
		"simulated world feeding the clients; one of: "+strings.Join(scenario.Names(), ", "))
	scale := flag.Float64("scale", 0.05, "trace scale in (0,1] feeding the clients")
	seed := flag.Int64("seed", 1, "master seed for traffic and churn lifetimes")
	pool := flag.Int("pool", 0, "override the server contribution-pool bound (in-process only)")
	swapEvery := flag.Duration("swap-every", 0,
		"republish the model this often while self-hosting (ETag churn; 0 = auto: 500ms for model-poll/mixed)")
	sloP99 := flag.Duration("slo-p99", 0, "SLO: per-request p99 ceiling (0 = strategy default)")
	sloErr := flag.Float64("slo-error-rate", -2, "SLO: error budget as a fraction of requests (0 = none allowed, -1 = unchecked; default: strategy default)")
	sloHeap := flag.Int64("slo-max-heap", 0, "SLO: peak sampled heap bytes (0 = strategy default)")
	storeURL := flag.String("store", "", "fleet: shared store URL (redis://host:port or mem://; default mem://) — also enables swap churn against an external fleet")
	fleetReplicas := flag.Int("fleet-replicas", 2, "fleet: self-hosted replica count when -addr is empty")
	propBound := flag.Duration("propagation-bound", 5*time.Second, "fleet: publish→replica flip lag ceiling (violation = exit 2)")
	workload := flag.String("workload", "mixed", "fleet: per-client workload profile driven round-robin across the replicas")
	out := flag.String("out", "BENCH_scaletest.json", "write the BENCH artifact here ('' = skip)")
	benchIn := flag.String("bench-in", "", "fold `go test -bench` output from this file into the artifact")
	traceOut := flag.String("trace-out", "", "write request-level spans as NDJSON to this file")
	flag.Parse()

	if *list {
		fmt.Print(scaletest.DescribeStrategies())
		return
	}

	code, err := run(options{
		addr: *addr, strategy: *strategy, clients: *clients, duration: *duration,
		ramp: *ramp, rampTo: *rampTo, stepDur: *stepDur, stepOps: *stepOps,
		maxOps: *maxOps, batch: *batch, scenario: *scen, scale: *scale,
		seed: *seed, pool: *pool, swapEvery: *swapEvery,
		storeURL: *storeURL, fleetReplicas: *fleetReplicas, propBound: *propBound, workload: *workload,
		sloP99: *sloP99, sloErr: *sloErr, sloHeap: *sloHeap,
		out: *out, benchIn: *benchIn, traceOut: *traceOut,
	})
	if err != nil {
		log.Print(err)
	}
	os.Exit(code)
}

// options carries the parsed flags by name so run's call site cannot
// silently transpose same-typed values.
type options struct {
	addr      string
	strategy  string
	clients   int
	duration  time.Duration
	ramp      string
	rampTo    int
	stepDur   time.Duration
	stepOps   int64
	maxOps    int64
	batch     int
	scenario  string
	scale     float64
	seed      int64
	pool      int
	swapEvery time.Duration

	storeURL      string
	fleetReplicas int
	propBound     time.Duration
	workload      string

	sloP99   time.Duration
	sloErr   float64
	sloHeap  int64
	out      string
	benchIn  string
	traceOut string
}

// strategies expands the -strategy flag.
func (o options) strategies() ([]string, error) {
	if o.strategy == "all" {
		return scaletest.Strategies(), nil
	}
	var names []string
	for _, n := range strings.Split(o.strategy, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if _, err := scaletest.ProfileFor(n); err != nil {
			return nil, err
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("scaletest: -strategy named no strategies")
	}
	return names, nil
}

// rampSteps expands -ramp / -ramp-to; nil means a fixed run.
func (o options) rampSteps() ([]int, error) {
	if o.ramp == "" {
		if o.rampTo > 0 {
			return scaletest.GeometricSteps(2, o.rampTo), nil
		}
		return nil, nil
	}
	var steps []int
	for _, f := range strings.Split(o.ramp, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("scaletest: bad -ramp step %q", f)
		}
		steps = append(steps, n)
	}
	return steps, nil
}

// slo renders the SLO flags; nil keeps the strategy default.
func (o options) slo() *scaletest.SLO {
	if o.sloP99 <= 0 && o.sloErr <= -2 && o.sloHeap <= 0 {
		return nil
	}
	s := &scaletest.SLO{MaxP99: o.sloP99, MaxErrorRate: o.sloErr, MaxHeapBytes: uint64(max(o.sloHeap, 0))}
	if o.sloErr <= -2 {
		// Only p99/heap were set explicitly; keep the universal "no
		// errors" budget rather than silently disabling it.
		s.MaxErrorRate = 0
	}
	return s
}

func run(o options) (int, error) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if o.strategy == "fleet" {
		return runFleet(ctx, o)
	}

	names, err := o.strategies()
	if err != nil {
		return scaletest.ExitError, err
	}
	steps, err := o.rampSteps()
	if err != nil {
		return scaletest.ExitError, err
	}

	var tracer *scaletest.Tracer
	if o.traceOut != "" {
		tracer = scaletest.NewTracer(0)
	}

	base := o.addr
	var host *scaletest.SelfHost
	if base == "" {
		// Server-side spans ride the same tracer via the server's trace
		// middleware: clients inject traceparent, the middleware records
		// a server span under the client's, so a client-visible p99 spike
		// can be split into server time vs everything else — span by span.
		var opts []pmeserver.Option
		if tracer != nil {
			opts = append(opts, pmeserver.WithTracer(tracer))
		}
		host, err = scaletest.StartSelfHost(o.seed, o.pool, opts...)
		if err != nil {
			return scaletest.ExitError, err
		}
		defer host.Close()
		base = host.BaseURL
		fmt.Fprintf(os.Stderr, "scaletest: in-process pmeserver at %s\n", base)

		// ETag churn: strategies that measure model polling need the
		// version to actually flip mid-run.
		swap := o.swapEvery
		if swap == 0 {
			for _, n := range names {
				if n == "model-poll" || n == "mixed" {
					swap = 500 * time.Millisecond
				}
			}
		}
		if swap > 0 {
			churnCtx, stopChurn := context.WithCancel(ctx)
			wait := scaletest.StartModelChurn(churnCtx, host.Server, swap)
			defer func() { stopChurn(); wait() }()
		}
	}

	artifact := scaletest.NewArtifact()
	var results []*scaletest.Result
	for _, name := range names {
		cfg := scaletest.Config{
			BaseURL:   base,
			Strategy:  name,
			Clients:   o.clients,
			Scenario:  o.scenario,
			Scale:     o.scale,
			Seed:      o.seed,
			BatchSize: o.batch,
			Duration:  o.duration,
			MaxOps:    o.maxOps,
			Tracer:    tracer,
			SLO:       o.slo(),
		}
		if len(steps) > 0 {
			rep, err := scaletest.RunRamp(ctx, cfg, scaletest.RampConfig{
				Steps:        steps,
				StepDuration: o.stepDur,
				StepMaxOps:   o.stepOps,
				OnStep: func(s scaletest.StepResult) {
					fmt.Fprintf(os.Stderr, "scaletest: %s step %d clients done (%.1f ops/s)\n",
						name, s.Clients, s.OpsPerSec)
				},
			})
			if err != nil {
				return scaletest.ExitError, err
			}
			fmt.Print(rep.String())
			artifact.AddRamp(rep)
			// The final step doubles as the strategy's headline result so
			// the artifact always carries per-strategy percentiles.
			for _, s := range rep.Steps {
				results = append(results, s.Result)
			}
			if n := len(rep.Steps); n > 0 {
				last := rep.Steps[n-1].Result
				artifact.AddResult(last)
				fmt.Print(last.String())
			}
		} else {
			res, err := scaletest.Run(ctx, cfg)
			if err != nil {
				return scaletest.ExitError, err
			}
			fmt.Print(res.String())
			artifact.AddResult(res)
			results = append(results, res)
		}
	}

	if o.benchIn != "" {
		f, err := os.Open(o.benchIn)
		if err != nil {
			return scaletest.ExitError, err
		}
		gb, perr := scaletest.ParseGoBench(f)
		f.Close()
		if perr != nil {
			return scaletest.ExitError, perr
		}
		artifact.GoBench = gb
		fmt.Fprintf(os.Stderr, "scaletest: folded %d go-bench results from %s\n", len(gb), o.benchIn)
	}

	// Fold the server's own post-run telemetry into the artifact: the
	// /metrics exposition carries the registry/pool/retrain lifecycle
	// series no client-side counter can see.
	if fams, err := scaletest.ScrapeMetrics(ctx, base); err != nil {
		fmt.Fprintf(os.Stderr, "scaletest: /metrics scrape skipped: %v\n", err)
	} else {
		artifact.ServerMetrics = fams
		fmt.Fprintf(os.Stderr, "scaletest: scraped %d metric families from %s/metrics\n", len(fams), base)
	}
	// Against a remote server the tracer holds only client spans; merge
	// the server's /debug/trace export so one NDJSON file still shows the
	// full tree. Self-hosted runs share the tracer, so there is nothing
	// to merge.
	if tracer != nil && host == nil {
		spans, err := scaletest.ScrapeTrace(ctx, base)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scaletest: /debug/trace scrape skipped: %v\n", err)
		}
		for _, sp := range spans {
			tracer.Record(sp)
		}
		if len(spans) > 0 {
			fmt.Fprintf(os.Stderr, "scaletest: merged %d server-side spans from %s/debug/trace\n", len(spans), base)
		}
	}

	if o.out != "" {
		if err := artifact.WriteFile(o.out); err != nil {
			return scaletest.ExitError, err
		}
		fmt.Fprintf(os.Stderr, "scaletest: wrote %s\n", o.out)
	}
	if tracer != nil {
		f, err := os.Create(o.traceOut)
		if err != nil {
			return scaletest.ExitError, err
		}
		if err := tracer.WriteNDJSON(f); err != nil {
			f.Close()
			return scaletest.ExitError, err
		}
		if err := f.Close(); err != nil {
			return scaletest.ExitError, err
		}
		fmt.Fprintf(os.Stderr, "scaletest: wrote %d spans to %s (dropped %d)\n",
			tracer.Len(), o.traceOut, tracer.Dropped())
	}

	// SLO violations exit 2 only after the artifact is on disk — a
	// failing perf gate must still leave the evidence for CI to upload.
	if code := scaletest.ExitCode(nil, results); code != scaletest.ExitOK {
		for _, r := range results {
			if r != nil && !r.SLO.OK() {
				fmt.Fprintf(os.Stderr, "scaletest: %s (%d clients): %s\n", r.Strategy, r.Clients, r.SLO)
			}
		}
		return code, nil
	}
	return scaletest.ExitOK, nil
}

// runFleet is the -strategy fleet path: a client fleet round-robined
// across N pmeserver replicas on one shared store, with per-replica
// version watchers asserting forward-only consistency and bounding
// publish→flip propagation. With -addr empty it self-hosts the replicas
// (over -store, default one shared in-memory store); against external
// replicas -store additionally enables swap churn through the store.
func runFleet(ctx context.Context, o options) (int, error) {
	addrs := splitAddrs(o.addr)
	var publisher *pme.Replica
	if len(addrs) == 0 {
		host, err := scaletest.StartFleet(o.storeURL, o.fleetReplicas, o.seed)
		if err != nil {
			return scaletest.ExitError, err
		}
		defer host.Close()
		addrs = host.Addrs
		publisher = host.Publisher
		fmt.Fprintf(os.Stderr, "scaletest: in-process fleet of %d replicas at %s\n",
			len(addrs), strings.Join(addrs, ", "))
	} else if o.storeURL != "" {
		st, err := store.Open(o.storeURL)
		if err != nil {
			return scaletest.ExitError, err
		}
		defer st.Close()
		publisher = pme.NewReplica(st, nil, pme.WithReplicaID("scaletest-publisher"))
		if err := publisher.SyncOnce(ctx); err != nil || publisher.Current() == nil {
			fmt.Fprintf(os.Stderr, "scaletest: store at %s has no model yet; running without swap churn\n", o.storeURL)
			publisher = nil
		}
	}

	res, err := scaletest.RunFleet(ctx, scaletest.FleetConfig{
		Addrs:            addrs,
		Clients:          o.clients,
		Strategy:         o.workload,
		Scenario:         o.scenario,
		Scale:            o.scale,
		Seed:             o.seed,
		BatchSize:        o.batch,
		Duration:         o.duration,
		MaxOps:           o.maxOps,
		SLO:              o.slo(),
		Publisher:        publisher,
		SwapEvery:        o.swapEvery,
		PropagationBound: o.propBound,
	})
	if err != nil {
		return scaletest.ExitError, err
	}
	fmt.Print(res.String())

	artifact := scaletest.NewArtifact()
	artifact.AddFleet(res)
	if res.Result != nil {
		artifact.AddResult(res.Result)
	}
	// Every replica's post-run /metrics lands in the artifact — the fleet
	// series (lease, adoptions, propagation, store ops) live there.
	for _, addr := range addrs {
		if fams, err := scaletest.ScrapeMetrics(ctx, addr); err != nil {
			fmt.Fprintf(os.Stderr, "scaletest: /metrics scrape of %s skipped: %v\n", addr, err)
		} else {
			artifact.ServerMetrics = append(artifact.ServerMetrics, fams...)
		}
	}
	if o.out != "" {
		if err := artifact.WriteFile(o.out); err != nil {
			return scaletest.ExitError, err
		}
		fmt.Fprintf(os.Stderr, "scaletest: wrote %s\n", o.out)
	}

	if !res.OK() {
		fmt.Fprintf(os.Stderr, "scaletest: fleet invariants violated (violations=%d laggards=%d max-propagation=%s bound=%s)\n",
			res.ConsistencyViolations, len(res.LaggardReplicas), res.MaxPropagation, res.PropagationBound)
		if res.Result != nil && !res.Result.SLO.OK() {
			fmt.Fprintf(os.Stderr, "scaletest: %s\n", res.Result.SLO)
		}
		return scaletest.ExitSLOViolation, nil
	}
	return scaletest.ExitOK, nil
}

// splitAddrs expands the comma-separated -addr list.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}
