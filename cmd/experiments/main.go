// Command experiments regenerates every table and figure of the paper's
// evaluation section from a fresh end-to-end study, printing the same
// rows/series the paper reports.
//
// Usage:
//
//	experiments [-scale 0.05] [-seed 1] [-per-setup 60] [-ablations]
//
// At -scale 1.0 the run matches the paper's dataset size (1,594 users,
// ~78,560 RTB impressions) and takes a few minutes; the default runs a
// faithful 10% study.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"yourandvalue"
)

func main() {
	scale := flag.Float64("scale", 0.10, "fraction of paper-scale dataset (0,1]")
	seed := flag.Int64("seed", 1, "simulation seed")
	perSetup := flag.Int("per-setup", 60, "campaign impressions per experimental setup")
	forest := flag.Int("forest", 40, "random-forest ensemble size")
	ablations := flag.Bool("ablations", false, "also run the ablation studies")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	pipe, err := yourandvalue.NewPipeline(
		yourandvalue.WithScale(*scale),
		yourandvalue.WithSeed(*seed),
		yourandvalue.WithCampaignImpressions(*perSetup),
		yourandvalue.WithForestSize(*forest),
		yourandvalue.WithCrossValidation(10, 1),
		yourandvalue.WithProgress(func(ev yourandvalue.StageEvent) {
			switch ev.State {
			case yourandvalue.StageStarted:
				fmt.Fprintf(os.Stderr, "  %-15s ...\n", ev.Stage)
			case yourandvalue.StageCompleted:
				fmt.Fprintf(os.Stderr, "  %-15s %s\n", ev.Stage, ev.Elapsed.Round(time.Millisecond))
			case yourandvalue.StageFailed:
				fmt.Fprintf(os.Stderr, "  %-15s FAILED: %v\n", ev.Stage, ev.Err)
			}
		}),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "running study at scale %.2f (seed %d)...\n", *scale, *seed)
	study, err := pipe.Execute(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "study complete in %s: %d requests, %d RTB impressions, %d+%d campaign records\n",
		time.Since(start).Round(time.Millisecond),
		len(study.Trace.Requests), study.Trace.RTBCount(),
		len(study.A1.Records), len(study.A2.Records))

	tables, err := study.All()
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	for _, t := range tables {
		fmt.Println(t.String())
	}

	if *ablations {
		if t, err := study.AblationClasses([]int{2, 4, 5, 8, 10}); err == nil {
			fmt.Println(t.String())
		} else {
			fmt.Fprintln(os.Stderr, "ablation classes:", err)
		}
		if t, err := study.AblationPublisher(); err == nil {
			fmt.Println(t.String())
		} else {
			fmt.Fprintln(os.Stderr, "ablation publisher:", err)
		}
		if t, err := study.AblationModelFamily(); err == nil {
			fmt.Println(t.String())
		} else {
			fmt.Fprintln(os.Stderr, "ablation family:", err)
		}
	}
}
