// Command experiments regenerates every table and figure of the paper's
// evaluation section from a fresh end-to-end study, printing the same
// rows/series the paper reports.
//
// Usage:
//
//	experiments [-scale 0.05] [-seed 1] [-per-setup 60] [-scenario baseline] [-ablations]
//
// At -scale 1.0 the run matches the paper's dataset size (1,594 users,
// ~78,560 RTB impressions) and takes a few minutes; the default runs a
// faithful 10% study.
//
// -scenario selects the simulated world from the scenario registry:
// "baseline" (the paper's second-price 2015 marketplace) is the
// default, and alternatives such as "first-price", "soft-floor",
// "mobile-heavy", "encrypted-surge" and "bot-noise" re-run the whole
// evaluation over a differently parameterized market and population.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"yourandvalue"
	"yourandvalue/internal/scenario"
)

func main() {
	scale := flag.Float64("scale", 0.10, "fraction of paper-scale dataset (0,1]")
	seed := flag.Int64("seed", 1, "simulation seed")
	perSetup := flag.Int("per-setup", 60, "campaign impressions per experimental setup (≥ 1)")
	forest := flag.Int("forest", 40, "random-forest ensemble size (≥ 1)")
	scen := flag.String("scenario", "baseline",
		"simulated world; one of: "+strings.Join(scenario.Names(), ", "))
	ablations := flag.Bool("ablations", false, "also run the ablation studies")
	flag.Parse()

	// Reject out-of-range flags up front with a usable message instead
	// of failing minutes into the run.
	if err := validateFlags(*scale, *perSetup, *forest, *scen); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	pipe, err := yourandvalue.NewPipeline(
		yourandvalue.WithScale(*scale),
		yourandvalue.WithSeed(*seed),
		yourandvalue.WithScenario(*scen),
		yourandvalue.WithCampaignImpressions(*perSetup),
		yourandvalue.WithForestSize(*forest),
		yourandvalue.WithCrossValidation(10, 1),
		yourandvalue.WithProgress(func(ev yourandvalue.StageEvent) {
			switch ev.State {
			case yourandvalue.StageStarted:
				fmt.Fprintf(os.Stderr, "  %-15s ...\n", ev.Stage)
			case yourandvalue.StageCompleted:
				fmt.Fprintf(os.Stderr, "  %-15s %s\n", ev.Stage, ev.Elapsed.Round(time.Millisecond))
			case yourandvalue.StageFailed:
				fmt.Fprintf(os.Stderr, "  %-15s FAILED: %v\n", ev.Stage, ev.Err)
			}
		}),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "running %s study at scale %.2f (seed %d)...\n", *scen, *scale, *seed)
	study, err := pipe.Execute(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "study complete in %s: %d requests, %d RTB impressions, %d+%d campaign records\n",
		time.Since(start).Round(time.Millisecond),
		len(study.Trace.Requests), study.Trace.RTBCount(),
		len(study.A1.Records), len(study.A2.Records))

	tables, err := study.All()
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	for _, t := range tables {
		fmt.Println(t.String())
	}

	if *ablations {
		if t, err := study.AblationClasses([]int{2, 4, 5, 8, 10}); err == nil {
			fmt.Println(t.String())
		} else {
			fmt.Fprintln(os.Stderr, "ablation classes:", err)
		}
		if t, err := study.AblationPublisher(); err == nil {
			fmt.Println(t.String())
		} else {
			fmt.Fprintln(os.Stderr, "ablation publisher:", err)
		}
		if t, err := study.AblationModelFamily(); err == nil {
			fmt.Println(t.String())
		} else {
			fmt.Fprintln(os.Stderr, "ablation family:", err)
		}
	}
}

// validateFlags rejects flag values no study can run under, before any
// stage spends time. The pipeline re-validates scale and scenario; the
// campaign and forest floors would otherwise only surface as training
// errors deep inside the run.
func validateFlags(scale float64, perSetup, forest int, scen string) error {
	// Negated form so NaN (which fails every comparison) is rejected too.
	if !(scale > 0 && scale <= 1) {
		return fmt.Errorf("-scale %v out of (0,1]", scale)
	}
	if perSetup < 1 {
		return fmt.Errorf("-per-setup %d must be ≥ 1", perSetup)
	}
	if forest < 1 {
		return fmt.Errorf("-forest %d must be ≥ 1", forest)
	}
	if _, err := scenario.Get(scen); err != nil {
		return fmt.Errorf("-scenario: %w", err)
	}
	return nil
}
