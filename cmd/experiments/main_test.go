package main

import (
	"math"
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	if err := validateFlags(0.1, 60, 40, "baseline"); err != nil {
		t.Fatalf("default flags rejected: %v", err)
	}
	if err := validateFlags(1.0, 1, 1, ""); err != nil {
		t.Fatalf("minimal flags rejected: %v", err)
	}
	cases := []struct {
		scale    float64
		perSetup int
		forest   int
		scen     string
		want     string
	}{
		{0, 60, 40, "baseline", "-scale"},
		{-0.5, 60, 40, "baseline", "-scale"},
		{1.5, 60, 40, "baseline", "-scale"},
		{math.NaN(), 60, 40, "baseline", "-scale"},
		{0.1, 0, 40, "baseline", "-per-setup"},
		{0.1, -2, 40, "baseline", "-per-setup"},
		{0.1, 60, 0, "baseline", "-forest"},
		{0.1, 60, 40, "not-a-world", "unknown scenario"},
	}
	for _, c := range cases {
		err := validateFlags(c.scale, c.perSetup, c.forest, c.scen)
		if err == nil {
			t.Errorf("validateFlags(%v, %d, %d, %q) accepted", c.scale, c.perSetup, c.forest, c.scen)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("error %q does not mention %q", err, c.want)
		}
	}
}
