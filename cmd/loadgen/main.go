// loadgen is a scaletest-style harness for pmeserver: it spins up N
// concurrent synthetic clients — each behaving like a deployed extension
// (§3.3): polling /v2/model with ETags, contributing anonymous price
// observations, and requesting batch estimates — and reports throughput,
// latency histograms (p50/p95/p99), and error/507 counts.
//
// Against an already-running server:
//
//	go run ./cmd/loadgen -addr http://127.0.0.1:8080 -clients 200 -duration 30s
//
// Self-contained (trains a small model and serves it in-process):
//
//	go run ./cmd/loadgen -clients 100 -duration 10s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"yourandvalue/internal/campaign"
	"yourandvalue/internal/core"
	"yourandvalue/internal/pmeserver"
	"yourandvalue/internal/rtb"
	"yourandvalue/internal/stream"
	"yourandvalue/internal/weblog"
)

func main() {
	addr := flag.String("addr", "", "base URL of a running pmeserver; empty starts one in-process")
	clients := flag.Int("clients", 100, "concurrent synthetic clients")
	duration := flag.Duration("duration", 10*time.Second, "wall-clock cap")
	batch := flag.Int("batch", 32, "stream events per client operation cycle")
	poll := flag.Int("poll", 16, "cycles between conditional model polls")
	scale := flag.Float64("scale", 0.05, "trace scale in (0,1] feeding the clients")
	seed := flag.Int64("seed", 1, "master seed for the synthetic traffic")
	maxOps := flag.Int64("maxops", 0, "total operation budget (0 = until duration or source drain)")
	pool := flag.Int("pool", 0, "override the server contribution-pool bound (in-process only, 0 = default)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	base := *addr
	var srv *pmeserver.Server
	if base == "" {
		var shutdown func()
		var err error
		srv, base, shutdown, err = selfHost(*seed, *pool)
		if err != nil {
			log.Fatal(err)
		}
		defer shutdown()
		fmt.Fprintf(os.Stderr, "loadgen: in-process pmeserver at %s\n", base)
	}

	wcfg := weblog.DefaultConfig().Scaled(*scale)
	wcfg.Seed = *seed
	report, err := stream.RunLoad(ctx, stream.LoadConfig{
		BaseURL:   base,
		Clients:   *clients,
		Source:    stream.NewGeneratorSource(wcfg),
		BatchSize: *batch,
		PollEvery: *poll,
		Duration:  *duration,
		MaxOps:    *maxOps,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.String())
	if srv != nil {
		fmt.Printf("server pool: %d contributions retained\n", len(srv.Contributions()))
	}
}

// selfHost trains a small campaign-fit model and serves it on a loopback
// listener, so the harness runs with zero external dependencies.
func selfHost(seed int64, maxPool int) (*pmeserver.Server, string, func(), error) {
	eco := rtb.NewEcosystem(rtb.EcosystemConfig{Seed: seed + 1})
	cat := weblog.NewCatalog(60, 30)
	cfg := campaign.A1Config(cat, 25, seed+2)
	cfg.Setups = cfg.Setups[:36]
	rep, err := campaign.NewEngine(eco).Run(cfg)
	if err != nil {
		return nil, "", nil, err
	}
	pme := core.NewPME(seed + 3)
	pme.ForestSize = 10
	pme.CVFolds, pme.CVRuns = 5, 1
	model, err := pme.Train(rep.Records, core.TrainConfig{})
	if err != nil {
		return nil, "", nil, err
	}
	srv, err := pmeserver.New(model)
	if err != nil {
		return nil, "", nil, err
	}
	if maxPool > 0 {
		srv.SetMaxPool(maxPool)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	shutdown := func() {
		shCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = hs.Shutdown(shCtx)
	}
	return srv, "http://" + ln.Addr().String(), shutdown, nil
}
