// loadgen is a scaletest-style harness for pmeserver: it spins up N
// concurrent synthetic clients — each behaving like a deployed extension
// (§3.3): polling /v2/model with ETags, contributing anonymous price
// observations, and requesting batch estimates — and reports throughput,
// latency histograms (p50/p95/p99), and error/507 counts.
//
// Deprecated: loadgen is now a thin compatibility wrapper over
// internal/scaletest, kept so existing invocations (and the CI stream
// smoke step) keep working unchanged. New work should use cmd/scaletest,
// which adds named workload strategies, SLO gates with distinct exit
// codes, concurrency ramps with knee detection, and the persisted
// BENCH_*.json artifact.
//
// Against an already-running server:
//
//	go run ./cmd/loadgen -addr http://127.0.0.1:8080 -clients 200 -duration 30s
//
// Self-contained (trains a small model and serves it in-process):
//
//	go run ./cmd/loadgen -clients 100 -duration 10s
//
// Bulk estimation through the NDJSON streaming endpoint instead of the
// batch one (p50/p95/p99 land in the 'stream' histogram):
//
//	go run ./cmd/loadgen -clients 100 -duration 10s -stream-estimate
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"yourandvalue/internal/scaletest"
	"yourandvalue/internal/scenario"
)

func main() {
	addr := flag.String("addr", "", "base URL of a running pmeserver; empty starts one in-process")
	clients := flag.Int("clients", 100, "concurrent synthetic clients")
	duration := flag.Duration("duration", 10*time.Second, "wall-clock cap")
	batch := flag.Int("batch", 32, "stream events per client operation cycle")
	poll := flag.Int("poll", 16, "cycles between conditional model polls")
	scale := flag.Float64("scale", 0.05, "trace scale in (0,1] feeding the clients")
	seed := flag.Int64("seed", 1, "master seed for the synthetic traffic")
	scen := flag.String("scenario", "baseline",
		"simulated world feeding the clients; one of: "+strings.Join(scenario.Names(), ", "))
	maxOps := flag.Int64("maxops", 0, "total operation budget (0 = until duration or source drain)")
	pool := flag.Int("pool", 0, "override the server contribution-pool bound (in-process only, 0 = default)")
	streamEst := flag.Bool("stream-estimate", false, "drive POST /v2/estimate/stream (NDJSON) instead of the batch endpoint; latencies land in the 'stream' histogram")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the load run to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile taken after the load run to this file")
	flag.Parse()

	// All work happens inside run so its defers — profile flushes,
	// server shutdown — execute even on the error path; log.Fatal here
	// would os.Exit past them and truncate a -cpuprofile after a
	// potentially long load run.
	if err := run(options{
		addr: *addr, clients: *clients, duration: *duration,
		batch: *batch, poll: *poll, scale: *scale, seed: *seed,
		scenario: *scen,
		maxOps:   *maxOps, pool: *pool, streamEstimate: *streamEst,
		cpuProfile: *cpuProfile, memProfile: *memProfile,
	}); err != nil {
		log.Fatal(err)
	}
}

// options carries the parsed flags by name, so the run call site cannot
// silently transpose same-typed values.
type options struct {
	addr           string
	clients        int
	duration       time.Duration
	batch          int
	poll           int
	scale          float64
	seed           int64
	scenario       string
	maxOps         int64
	pool           int
	streamEstimate bool
	cpuProfile     string
	memProfile     string
}

func run(o options) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Profiles cover the serving hot path: with an in-process server the
	// pmeserver handlers, detection encoder and forest all run inside
	// this process, so one -cpuprofile/-memprofile pair captures both
	// sides of the load.
	if o.cpuProfile != "" {
		f, err := os.Create(o.cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if o.memProfile != "" {
		f, err := os.Create(o.memProfile)
		if err != nil {
			return err
		}
		defer func() {
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				log.Print(err)
			}
			f.Close()
		}()
	}

	base := o.addr
	var host *scaletest.SelfHost
	if base == "" {
		var err error
		host, err = scaletest.StartSelfHost(o.seed, o.pool)
		if err != nil {
			return err
		}
		defer host.Close()
		base = host.BaseURL
		fmt.Fprintf(os.Stderr, "loadgen: in-process pmeserver at %s\n", base)
	}

	// The legacy loadgen workload expressed as a scaletest profile:
	// contribute and estimate every cycle, conditional model poll every
	// -poll cycles, estimates over the batch or stream endpoint per flag.
	prof := scaletest.Profile{
		Name:            "loadgen-compat",
		Description:     "legacy cmd/loadgen workload (deprecated wrapper)",
		PollEvery:       o.poll,
		ContributeEvery: 1,
		EstimateEvery:   1,
		// Errors are handled below to preserve the historical exit
		// behavior (exit 1 with a loadgen-prefixed message).
		DefaultSLO: scaletest.SLO{MaxErrorRate: -1},
	}
	if o.streamEstimate {
		prof.EstimateEvery, prof.StreamEvery = 0, 1
	}

	res, err := scaletest.Run(ctx, scaletest.Config{
		BaseURL:   base,
		Profile:   &prof,
		Clients:   o.clients,
		Scenario:  o.scenario,
		Scale:     o.scale,
		Seed:      o.seed,
		BatchSize: o.batch,
		Duration:  o.duration,
		MaxOps:    o.maxOps,
	})
	if err != nil {
		return err
	}
	fmt.Print(res.String())
	if host != nil {
		fmt.Printf("server pool: %d contributions retained\n", len(host.Server.Contributions()))
	}
	// A load run that saw request failures must fail the process: the CI
	// smoke steps rely on the exit code, not on a human reading the report.
	if res.Errors > 0 {
		return fmt.Errorf("loadgen: %d request errors during the run", res.Errors)
	}
	return nil
}
