package yourandvalue

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

// The study fixture is shared: Run at quick scale once.
var (
	studyOnce sync.Once
	study     *Study
	studyErr  error
)

func quickStudy(tb testing.TB) *Study {
	tb.Helper()
	studyOnce.Do(func() {
		study, studyErr = Run(QuickConfig())
	})
	if studyErr != nil {
		tb.Fatal(studyErr)
	}
	return study
}

// TestStudyDeterminism: identical seeds must reproduce identical studies
// end to end, including every derived figure.
func TestStudyDeterminism(t *testing.T) {
	cfg := QuickConfig()
	cfg.Scale = 0.02
	cfg.CampaignImpressionsPerSetup = 15
	cfg.ForestSize = 8
	cfg.CVFolds, cfg.CVRuns = 3, 1
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trace.Requests) != len(b.Trace.Requests) {
		t.Fatal("traces differ")
	}
	for _, pair := range [][2]string{
		{a.Figure2().String(), b.Figure2().String()},
		{a.Figure17().String(), b.Figure17().String()},
		{a.Section54().String(), b.Section54().String()},
		{a.BaselineComparison().String(), b.BaselineComparison().String()},
	} {
		if pair[0] != pair[1] {
			t.Fatalf("figures differ under same seed:\n%s\nvs\n%s", pair[0], pair[1])
		}
	}
}

func TestRunValidatesConfig(t *testing.T) {
	if _, err := Run(Config{Scale: 0}); err == nil {
		t.Error("zero scale accepted")
	}
	if _, err := Run(Config{Scale: 2, CampaignImpressionsPerSetup: 10}); err == nil {
		t.Error("scale > 1 accepted")
	}
	cfg := QuickConfig()
	cfg.CampaignImpressionsPerSetup = 0
	if _, err := Run(cfg); err == nil {
		t.Error("zero campaign target accepted")
	}
}

func TestStudyArtifacts(t *testing.T) {
	s := quickStudy(t)
	if s.Trace == nil || s.Analysis == nil || s.A1 == nil || s.A2 == nil ||
		s.Model == nil || s.Baseline == nil || len(s.Costs) == 0 {
		t.Fatal("incomplete study")
	}
	if len(s.Analysis.Impressions) != s.Trace.RTBCount() {
		t.Errorf("analyzer found %d of %d impressions",
			len(s.Analysis.Impressions), s.Trace.RTBCount())
	}
	if len(s.A1.Records) == 0 || len(s.A2.Records) == 0 {
		t.Fatal("campaigns empty")
	}
	if s.Model.Metrics.Accuracy <= 0.25 {
		t.Errorf("model no better than chance: %v", s.Model.Metrics.Accuracy)
	}
}

// parsePct reads a "12.3%" cell.
func parsePct(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("cannot parse pct %q: %v", cell, err)
	}
	return v / 100
}

// parseCPM reads a numeric cell.
func parseCPM(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cannot parse cpm %q: %v", cell, err)
	}
	return v
}

func TestTable1Parses(t *testing.T) {
	s := quickStudy(t)
	tab := s.Table1()
	if len(tab.Rows) != 3 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	if tab.Rows[0][2] != "cleartext" || tab.Rows[0][3] != "0.950" {
		t.Errorf("row A: %v", tab.Rows[0])
	}
	if tab.Rows[1][2] != "encrypted" || tab.Rows[1][1] != "Rubicon" {
		t.Errorf("row B: %v", tab.Rows[1])
	}
	if tab.Rows[2][2] != "encrypted" || tab.Rows[2][4] != "300x250" {
		t.Errorf("row C: %v", tab.Rows[2])
	}
}

func TestFigure2Shape(t *testing.T) {
	s := quickStudy(t)
	tab := s.Figure2()
	if len(tab.Rows) != 12 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	first := parsePct(t, tab.Rows[0][1])
	last := parsePct(t, tab.Rows[11][1])
	if last <= first {
		t.Errorf("encrypted pair share should rise: %.3f → %.3f", first, last)
	}
	prev := -1.0
	for _, row := range tab.Rows {
		v := parsePct(t, row[1])
		if v < prev-1e-9 {
			t.Error("share not monotone")
		}
		prev = v
	}
}

func TestFigure3Shape(t *testing.T) {
	s := quickStudy(t)
	tab := s.Figure3()
	if len(tab.Rows) < 5 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	// MoPub must rank first by RTB share and carry an outsized share of
	// cleartext prices.
	if tab.Rows[0][0] != "MoPub" {
		t.Errorf("top entity = %s", tab.Rows[0][0])
	}
	rtbShare := parsePct(t, tab.Rows[0][1])
	clrShare := parsePct(t, tab.Rows[0][2])
	if clrShare <= rtbShare {
		t.Errorf("MoPub cleartext share %.3f should exceed its RTB share %.3f",
			clrShare, rtbShare)
	}
	// Cumulative column must be monotone and end near 100%.
	last := parsePct(t, tab.Rows[len(tab.Rows)-1][3])
	if last < 0.99 {
		t.Errorf("cumulative cleartext ends at %.3f", last)
	}
}

func TestTable3Counts(t *testing.T) {
	s := quickStudy(t)
	tab := s.Table3()
	if len(tab.Rows) != 5 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	if tab.Rows[1][1] == "0" || tab.Rows[1][2] == "0" || tab.Rows[1][3] == "0" {
		t.Error("impression counts empty")
	}
}

func TestFigure5CityShape(t *testing.T) {
	s := quickStudy(t)
	tab := s.Figure5()
	if len(tab.Rows) != 10 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	// Madrid (row 0) spread (p95/p5) should exceed Torello's (row 9) when
	// both have data; medians lower in the metro.
	if tab.Rows[0][0] != "Madrid" || tab.Rows[9][0] != "Torello" {
		t.Fatal("city order wrong")
	}
}

func TestFigure6MorningElevated(t *testing.T) {
	s := quickStudy(t)
	tab := s.Figure6()
	if len(tab.Rows) != 6 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	morning := parseCPM(t, tab.Rows[2][4]) // 08:00-11:00 median
	night := parseCPM(t, tab.Rows[5][4])   // 20:00-23:00 median
	if morning <= night {
		t.Errorf("morning median %.3f should exceed evening %.3f", morning, night)
	}
}

func TestFigure8AndroidLead(t *testing.T) {
	s := quickStudy(t)
	tab := s.Figure8()
	androidTotal, iosTotal := 0.0, 0.0
	for _, row := range tab.Rows {
		if row[1] == "-" {
			continue
		}
		androidTotal += parsePct(t, row[1])
		iosTotal += parsePct(t, row[2])
	}
	// At quick scale (~80 users) heavy-tailed per-user activity makes the
	// ratio noisy; require the ordering here and check ≈2x at full scale
	// (see EXPERIMENTS.md).
	if androidTotal <= iosTotal {
		t.Errorf("Android share %.2f should exceed iOS %.2f", androidTotal, iosTotal)
	}
}

func TestFigure9Normalized(t *testing.T) {
	s := quickStudy(t)
	tab := s.Figure9()
	if len(tab.Rows) != 2 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	a := parseCPM(t, tab.Rows[0][3])
	i := parseCPM(t, tab.Rows[1][3])
	// Normalized per user the two platforms should be comparable (within 2x).
	if a > 2*i || i > 2*a {
		t.Errorf("normalized imps/user: android %.1f vs ios %.1f", a, i)
	}
}

func TestFigure10IOSPremium(t *testing.T) {
	s := quickStudy(t)
	tab := s.Figure10()
	android := parseCPM(t, tab.Rows[0][4])
	ios := parseCPM(t, tab.Rows[1][4])
	if ios <= android {
		t.Errorf("iOS median %.3f should exceed Android %.3f", ios, android)
	}
}

func TestFigure11IABSpread(t *testing.T) {
	s := quickStudy(t)
	tab := s.Figure11()
	medians := map[string]float64{}
	for _, row := range tab.Rows {
		medians[row[0]] = parseCPM(t, row[4])
	}
	biz, hasBiz := medians["IAB3"]
	sci, hasSci := medians["IAB15"]
	if hasBiz && hasSci && biz < 5*sci {
		t.Errorf("IAB3 median %.3f should be ≫ IAB15 %.3f", biz, sci)
	}
	if len(medians) < 8 {
		t.Errorf("only %d IABs present", len(medians))
	}
}

func TestFigure12Takeover(t *testing.T) {
	s := quickStudy(t)
	tab := s.Figure12()
	if len(tab.Rows) != 12 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	janBanner := parsePct(t, tab.Rows[0][1])
	janMPU := parsePct(t, tab.Rows[0][2])
	decBanner := parsePct(t, tab.Rows[11][1])
	decMPU := parsePct(t, tab.Rows[11][2])
	if janBanner <= janMPU {
		t.Errorf("January: banner %.3f vs MPU %.3f", janBanner, janMPU)
	}
	if decMPU <= decBanner {
		t.Errorf("December: MPU %.3f vs banner %.3f", decMPU, decBanner)
	}
}

func TestFigure13NotByArea(t *testing.T) {
	s := quickStudy(t)
	tab := s.Figure13()
	medians := map[string]float64{}
	for _, row := range tab.Rows {
		if row[4] != "-" {
			medians[row[0]] = parseCPM(t, row[4])
		}
	}
	// MPU must out-price the larger banner formats when present.
	if mpu, ok := medians["300x250"]; ok {
		if banner, ok2 := medians["320x50"]; ok2 && mpu <= banner {
			t.Errorf("MPU %.3f should exceed 320x50 %.3f", mpu, banner)
		}
	}
}

func TestFigure14RevenueConcentration(t *testing.T) {
	s := quickStudy(t)
	tab := s.Figure14()
	shares := map[string]float64{}
	for _, row := range tab.Rows {
		shares[row[0]] = parsePct(t, row[3])
	}
	if shares["300x250"] < 0.25 {
		t.Errorf("MPU revenue share %.3f too small (paper 64.3%% of Turn)", shares["300x250"])
	}
}

func TestSection44AppPremium(t *testing.T) {
	s := quickStudy(t)
	tab := s.Section44()
	app := parseCPM(t, tab.Rows[0][2])
	web := parseCPM(t, tab.Rows[1][2])
	if app/web < 1.8 {
		t.Errorf("app/web mean ratio %.2f, want ≈2.6", app/web)
	}
}

func TestFigure15EncryptedPremium(t *testing.T) {
	s := quickStudy(t)
	tab := s.Figure15()
	if len(tab.Rows) < 4 {
		t.Fatalf("common IABs: %d", len(tab.Rows))
	}
	higher := 0
	for _, row := range tab.Rows {
		if parseCPM(t, row[3]) > parseCPM(t, row[2]) {
			higher++
		}
	}
	if float64(higher) < 0.7*float64(len(tab.Rows)) {
		t.Errorf("A1 median above A2 in only %d/%d IABs", higher, len(tab.Rows))
	}
}

func TestSection54Metrics(t *testing.T) {
	s := quickStudy(t)
	tab := s.Section54()
	if len(tab.Rows) != 8 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	acc := parsePct(t, tab.Rows[2][1])
	if acc < 0.50 {
		t.Errorf("accuracy %.3f", acc)
	}
}

func TestFigure16Ratios(t *testing.T) {
	s := quickStudy(t)
	tab := s.Figure16()
	if len(tab.Rows) != 5 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	a1 := parseCPM(t, tab.Rows[0][3])
	a2 := parseCPM(t, tab.Rows[1][3])
	d15 := parseCPM(t, tab.Rows[3][3]) // D-mopub'15 median
	if a1 <= a2 {
		t.Errorf("A1 median %.3f should exceed A2 %.3f", a1, a2)
	}
	if a2 <= d15 {
		t.Errorf("2016 cleartext %.3f should exceed 2015 %.3f (time shift)", a2, d15)
	}
}

func TestFigure17Headlines(t *testing.T) {
	s := quickStudy(t)
	tab := s.Figure17()
	if len(tab.Rows) < 7 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	// Total column strictly nondecreasing down the percentiles.
	prev := -1.0
	for _, row := range tab.Rows {
		if row[4] == "" {
			continue
		}
		v := parseCPM(t, row[4])
		if v < prev {
			t.Error("total percentiles not monotone")
		}
		prev = v
	}
	// Corrected cleartext ≥ raw cleartext at every percentile.
	for _, row := range tab.Rows {
		if row[1] == "" {
			continue
		}
		if parseCPM(t, row[2]) < parseCPM(t, row[1]) {
			t.Error("time correction should not lower cleartext")
		}
	}
}

func TestFigure18Regions(t *testing.T) {
	s := quickStudy(t)
	tab := s.Figure18()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	clrDom := parsePct(t, tab.Rows[1][2])
	encDom := parsePct(t, tab.Rows[2][2])
	if clrDom <= encDom {
		t.Errorf("cleartext-dominant %.3f should exceed encrypted-dominant %.3f (paper ~75%%)",
			clrDom, encDom)
	}
}

func TestFigure19PerImpression(t *testing.T) {
	s := quickStudy(t)
	tab := s.Figure19()
	mc := parseCPM(t, tab.Rows[0][1])
	me := parseCPM(t, tab.Rows[1][1])
	if me <= mc {
		t.Errorf("encrypted per-impression median %.3f should exceed cleartext %.3f", me, mc)
	}
}

func TestSection63Validation(t *testing.T) {
	s := quickStudy(t)
	tab := s.Section63()
	found := false
	for _, row := range tab.Rows {
		if row[0] == "same order of magnitude as ARPU" {
			found = true
			if row[1] != "true" {
				t.Errorf("validation failed: %v", tab.Rows)
			}
		}
	}
	if !found {
		t.Fatal("validation row missing")
	}
}

func TestBaselineComparison(t *testing.T) {
	s := quickStudy(t)
	tab := s.BaselineComparison()
	if len(tab.Rows) != 3 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	ourErr := parseCPM(t, tab.Rows[1][2])
	baseErr := parseCPM(t, tab.Rows[2][2])
	// Per-impression, the feature-conditioned model must land closer to
	// the true encrypted median than the cleartext-equivalence estimate.
	if ourErr >= baseErr {
		t.Errorf("model median error %.3f not better than baseline %.3f", ourErr, baseErr)
	}
	// And the baseline's total must underestimate the true total (the
	// paper's core finding about the [62] assumption).
	truthTotal := parseCPM(t, tab.Rows[0][3])
	baseTotal := parseCPM(t, tab.Rows[2][3])
	if baseTotal >= truthTotal {
		t.Errorf("baseline total %.0f should underestimate truth %.0f", baseTotal, truthTotal)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:     "X",
		Title:  "demo",
		Header: []string{"a", "bb"},
		Notes:  []string{"note1"},
	}
	tab.AddRow("1", "2")
	tab.AddRowf("r", 1.5, 0.001)
	out := tab.String()
	for _, want := range []string{"== X — demo ==", "a", "bb", "note1", "1.500"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestFormatters(t *testing.T) {
	cases := map[float64]string{
		0: "0", 0.005: "0.0050", 1.5: "1.500", 55.5: "55.5", 2500: "2500",
	}
	for v, want := range cases {
		if got := FormatCPM(v); got != want {
			t.Errorf("FormatCPM(%v) = %q, want %q", v, got, want)
		}
	}
	if FormatPct(0.125) != "12.5%" {
		t.Error("FormatPct")
	}
}

func TestAblations(t *testing.T) {
	s := quickStudy(t)
	classes, err := s.AblationClasses([]int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(classes.Rows) != 3 {
		t.Fatal("class ablation rows")
	}
	// Fewer classes → higher raw accuracy, but check the lift over chance
	// is substantial everywhere.
	for _, row := range classes.Rows {
		acc := parsePct(t, row[1])
		chance := parsePct(t, row[2])
		if acc < 1.5*chance {
			t.Errorf("classes=%s accuracy %.3f barely above chance %.3f", row[0], acc, chance)
		}
	}

	fam, err := s.AblationModelFamily()
	if err != nil {
		t.Fatal(err)
	}
	if len(fam.Rows) != 4 {
		t.Fatalf("family rows: %d", len(fam.Rows))
	}
	// Compare on mean absolute error (column 2): YourAdValue accumulates
	// sums, so tail errors matter and a constant central predictor must
	// not win.
	forestErr := parseCPM(t, fam.Rows[0][2])
	meanErr := parseCPM(t, fam.Rows[3][2])
	if forestErr >= meanErr {
		t.Errorf("forest mean error %.3f not better than mean-regression %.3f",
			forestErr, meanErr)
	}
	// The real regression tree must also beat the constant predictor —
	// and the classification pipeline should be at least competitive with
	// it (the paper's reason for shipping classification).
	regErr := parseCPM(t, fam.Rows[2][2])
	if regErr >= meanErr {
		t.Errorf("regression tree %.3f not better than constant mean %.3f", regErr, meanErr)
	}
}

func TestAllTables(t *testing.T) {
	s := quickStudy(t)
	tables, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) < 24 {
		t.Fatalf("All() returned %d tables", len(tables))
	}
	seen := map[string]bool{}
	for _, tab := range tables {
		if tab.ID == "" || len(tab.Header) == 0 {
			t.Fatalf("malformed table %+v", tab)
		}
		if seen[tab.ID] {
			t.Fatalf("duplicate table %s", tab.ID)
		}
		seen[tab.ID] = true
		if out := tab.String(); len(out) == 0 {
			t.Fatal("empty rendering")
		}
	}
	for _, id := range []string{"Figure 2", "Figure 17", "Section 5.4", "Table 3", "Baseline"} {
		if !seen[id] {
			t.Errorf("missing table %s", id)
		}
	}
}
