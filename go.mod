module yourandvalue

go 1.24
