package yourandvalue

import (
	"fmt"
	"sort"

	"yourandvalue/internal/analyzer"
	"yourandvalue/internal/campaign"
	"yourandvalue/internal/geoip"
	"yourandvalue/internal/iab"
	"yourandvalue/internal/nurl"
	"yourandvalue/internal/rtb"
	"yourandvalue/internal/stats"
	"yourandvalue/internal/useragent"
)

// Table1 demonstrates nURL parsing on the paper's three example
// notification shapes (MoPub cleartext, MathTag encrypted, myThings
// encrypted).
func (s *Study) Table1() *Table {
	t := &Table{
		ID:     "Table 1",
		Title:  "Winning price notification URLs (cleartext vs encrypted)",
		Header: []string{"example", "ADX", "kind", "price/token", "slot"},
	}
	examples := []string{
		"http://cpp.imp.mpx.mopub.com/imp?ad_domain=amazon.es&ads_creative_id=ID&bid_price=0.99&bidder_name=dsp&charge_price=0.95&currency=USD&mopub_id=ID&pub_name=pub",
		"http://tags.mathtag.com/notify/js?exch=ruc&price=B6A3F3C19F50C7FD&3pck=http%3A%2F%2Fbeacon-eu2.rubiconproject.com%2Fbeacon%2Ft%2Fce48666c",
		"http://adserver-ir-p.mythings.com/ads/admainrtb.aspx?googid=ID&width=300&height=250&cmpid=ID&gid=ID&mcpm=60&rtbwinprice=VLwbi4K21KFAAAm2ziqnOS_O5oNkFuuJw",
	}
	reg := nurl.Default()
	for i, raw := range examples {
		n, ok := reg.Parse(raw)
		if !ok {
			t.AddRow(fmt.Sprintf("(%c)", 'A'+i), "-", "UNPARSED", "-", "-")
			continue
		}
		price := n.Token
		if n.Kind == nurl.Cleartext {
			price = FormatCPM(n.PriceCPM)
		}
		t.AddRow(fmt.Sprintf("(%c)", 'A'+i), n.ADX, n.Kind.String(), price,
			rtb.Slot{W: n.Width, H: n.Height}.String())
	}
	t.Notes = append(t.Notes,
		"paper: (A) charge_price=0.95 with bid_price filtered; (B,C) opaque tokens")
	return t
}

// Figure2 reports the portion of ADX-DSP pairs delivering encrypted price
// notifications per month of the trace year.
func (s *Study) Figure2() *Table {
	t := &Table{
		ID:     "Figure 2",
		Title:  "Encrypted vs cleartext ADX-DSP pairs over 2015",
		Header: []string{"month", "encrypted pairs", "cleartext pairs"},
	}
	for m := 1; m <= 12; m++ {
		share := s.Analysis.EncryptedPairShare(m)
		t.AddRow(fmt.Sprintf("%02d", m), FormatPct(share), FormatPct(1-share))
	}
	t.Notes = append(t.Notes, "paper: share rises steadily through 2015 (~26% of mobile RTB overall)")
	return t
}

// Figure3 reports each ad entity's share of RTB traffic against the
// cumulative share of cleartext prices it accounts for.
func (s *Study) Figure3() *Table {
	t := &Table{
		ID:     "Figure 3",
		Title:  "Cumulative portion of cleartext prices vs RTB share of top ad entities",
		Header: []string{"entity", "RTB share", "cleartext share", "cumulative cleartext"},
	}
	type ent struct {
		name     string
		imps     int
		cleartxt int
	}
	byADX := map[string]*ent{}
	totalImps, totalClr := 0, 0
	for _, imp := range s.Analysis.Impressions {
		e := byADX[imp.Notification.ADX]
		if e == nil {
			e = &ent{name: imp.Notification.ADX}
			byADX[imp.Notification.ADX] = e
		}
		e.imps++
		totalImps++
		if imp.Notification.Kind == nurl.Cleartext {
			e.cleartxt++
			totalClr++
		}
	}
	ents := make([]*ent, 0, len(byADX))
	for _, e := range byADX {
		ents = append(ents, e)
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].imps > ents[j].imps })
	cum := 0.0
	for _, e := range ents {
		clrShare := float64(e.cleartxt) / float64(max(totalClr, 1))
		cum += clrShare
		t.AddRow(e.name,
			FormatPct(float64(e.imps)/float64(max(totalImps, 1))),
			FormatPct(clrShare), FormatPct(cum))
	}
	t.Notes = append(t.Notes,
		"paper: MoPub 33.55% of RTB and 45.40% of cleartext; encrypting entities contribute little cleartext")
	return t
}

// Table3 summarizes the three datasets (D, A1, A2).
func (s *Study) Table3() *Table {
	t := &Table{
		ID:     "Table 3",
		Title:  "Summary of dataset and ad-campaigns",
		Header: []string{"metric", "D", "A1", "A2"},
	}
	dIABs := map[iab.Category]bool{}
	dPubs := map[string]bool{}
	for _, imp := range s.Analysis.Impressions {
		dIABs[imp.Category] = true
		dPubs[imp.Publisher] = true
	}
	a1IABs, a1Pubs := campaignDiversity(s.A1)
	a2IABs, a2Pubs := campaignDiversity(s.A2)
	t.AddRow("Time period", "12 months", "13 days", "8 days")
	t.AddRow("Impressions",
		fmt.Sprint(len(s.Analysis.Impressions)),
		fmt.Sprint(len(s.A1.Records)), fmt.Sprint(len(s.A2.Records)))
	t.AddRow("RTB publishers", fmt.Sprint(len(dPubs)),
		fmt.Sprint(a1Pubs), fmt.Sprint(a2Pubs))
	t.AddRow("IAB categories", fmt.Sprint(len(dIABs)),
		fmt.Sprint(a1IABs), fmt.Sprint(a2IABs))
	t.AddRow("Users", fmt.Sprint(len(s.Analysis.Users)), "-", "-")
	t.Notes = append(t.Notes,
		"paper: D = 12mo / 78,560 imps / 1,594 users; A1 = 13d / 632,667; A2 = 8d / 318,964")
	return t
}

func campaignDiversity(rep *campaign.Report) (iabs, pubs int) {
	is := map[iab.Category]bool{}
	ps := map[string]bool{}
	for _, r := range rep.Records {
		is[r.Category] = true
		ps[r.Publisher] = true
	}
	return len(is), len(ps)
}

// pricesWhere collects cleartext prices passing the filter.
func (s *Study) pricesWhere(keep func(analyzer.Impression) bool) []float64 {
	return s.Analysis.CleartextPrices(keep)
}

func summaryRow(t *Table, label string, prices []float64) {
	sum, err := stats.Summarize(prices)
	if err != nil {
		t.AddRow(label, "0", "-", "-", "-", "-", "-")
		return
	}
	t.AddRow(label, fmt.Sprint(sum.N), FormatCPM(sum.P5), FormatCPM(sum.P10),
		FormatCPM(sum.P50), FormatCPM(sum.P90), FormatCPM(sum.P95))
}

// Figure5 reports the charge-price distribution per city, largest first.
func (s *Study) Figure5() *Table {
	t := &Table{
		ID:     "Figure 5",
		Title:  "Charge prices per city (sorted by city size)",
		Header: []string{"city", "n", "p5", "p10", "median", "p90", "p95"},
	}
	for _, c := range geoip.AllCities() {
		c := c
		summaryRow(t, c.String(), s.pricesWhere(func(i analyzer.Impression) bool {
			return i.City == c
		}))
	}
	t.Notes = append(t.Notes,
		"paper: large cities show lower medians but wider spread")
	return t
}

// Figure6 reports charge prices per time-of-day bin.
func (s *Study) Figure6() *Table {
	t := &Table{
		ID:     "Figure 6",
		Title:  "Charge prices by time of day",
		Header: []string{"bin", "n", "p5", "p10", "median", "p90", "p95"},
	}
	var all [6][]float64
	for _, imp := range s.Analysis.Impressions {
		if imp.Notification.Kind == nurl.Cleartext {
			all[rtb.HourBin(imp.Time.Hour())] = append(all[rtb.HourBin(imp.Time.Hour())], imp.Notification.PriceCPM)
		}
	}
	for b := 0; b < 6; b++ {
		summaryRow(t, rtb.HourBinLabel(b), all[b])
	}
	if len(all[2]) > 0 && len(all[5]) > 0 {
		ks, err := stats.KolmogorovSmirnov(all[2], all[5])
		if err == nil {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"KS morning-vs-evening: D=%.3f p=%.2g (paper: p<0.0002)", ks.D, ks.P))
		}
	}
	return t
}

// Figure7 reports charge prices per day of week.
func (s *Study) Figure7() *Table {
	t := &Table{
		ID:     "Figure 7",
		Title:  "Charge prices by day of week",
		Header: []string{"day", "n", "p5", "p10", "median", "p90", "p95"},
	}
	days := []string{"Sunday", "Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday"}
	var wk, wkend []float64
	for d := 0; d < 7; d++ {
		d := d
		prices := s.pricesWhere(func(i analyzer.Impression) bool {
			return int(i.Time.Weekday()) == d
		})
		if d == 0 || d == 6 {
			wkend = append(wkend, prices...)
		} else {
			wk = append(wk, prices...)
		}
		summaryRow(t, days[d], prices)
	}
	if len(wk) > 0 && len(wkend) > 0 {
		ks, err := stats.KolmogorovSmirnov(wk, wkend)
		if err == nil {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"KS weekday-vs-weekend: D=%.3f p=%.2g (paper: p<0.002)", ks.D, ks.P))
		}
		mw, _ := stats.Quantile(wk, 0.95)
		me, _ := stats.Quantile(wkend, 0.95)
		t.Notes = append(t.Notes, fmt.Sprintf(
			"weekday p95 %.2f vs weekend p95 %.2f (paper: weekday max higher)", mw, me))
	}
	return t
}

// Figure8 reports the RTB impression share per mobile OS per month.
func (s *Study) Figure8() *Table {
	t := &Table{
		ID:     "Figure 8",
		Title:  "Portion of RTB traffic for top mobile OSes",
		Header: []string{"month", "Android", "iOS", "Windows Mob", "Other"},
	}
	counts := map[int]map[useragent.OS]int{}
	for _, imp := range s.Analysis.Impressions {
		m := imp.Month
		if counts[m] == nil {
			counts[m] = map[useragent.OS]int{}
		}
		counts[m][imp.Device.OS]++
	}
	for m := 1; m <= 12; m++ {
		total := 0
		for _, n := range counts[m] {
			total += n
		}
		if total == 0 {
			t.AddRow(fmt.Sprintf("%02d", m), "-", "-", "-", "-")
			continue
		}
		t.AddRow(fmt.Sprintf("%02d", m),
			FormatPct(float64(counts[m][useragent.Android])/float64(total)),
			FormatPct(float64(counts[m][useragent.IOS])/float64(total)),
			FormatPct(float64(counts[m][useragent.WindowsMobile])/float64(total)),
			FormatPct(float64(counts[m][useragent.OSOther])/float64(total)))
	}
	t.Notes = append(t.Notes, "paper: Android appears in ~2x more RTB auctions than iOS")
	return t
}

// Figure9 normalizes the RTB share per OS by that OS's user base.
func (s *Study) Figure9() *Table {
	t := &Table{
		ID:     "Figure 9",
		Title:  "RTB impressions per user, normalized by OS",
		Header: []string{"OS", "users", "impressions", "imps/user"},
	}
	users := map[useragent.OS]int{}
	for _, u := range s.Trace.Users {
		users[u.OS]++
	}
	imps := map[useragent.OS]int{}
	for _, imp := range s.Analysis.Impressions {
		imps[imp.Device.OS]++
	}
	for _, os := range []useragent.OS{useragent.Android, useragent.IOS} {
		perUser := 0.0
		if users[os] > 0 {
			perUser = float64(imps[os]) / float64(users[os])
		}
		t.AddRow(os.String(), fmt.Sprint(users[os]), fmt.Sprint(imps[os]),
			fmt.Sprintf("%.1f", perUser))
	}
	t.Notes = append(t.Notes,
		"paper: normalized per OS, Android and iOS receive roughly equal RTB impressions")
	return t
}

// Figure10 reports the cleartext charge prices per OS on the top mobile
// exchange (MoPub), where iOS devices draw higher medians.
func (s *Study) Figure10() *Table {
	t := &Table{
		ID:     "Figure 10",
		Title:  "Charge prices per mobile OS (MoPub slice)",
		Header: []string{"OS", "n", "p5", "p10", "median", "p90", "p95"},
	}
	for _, os := range []useragent.OS{useragent.Android, useragent.IOS} {
		os := os
		summaryRow(t, os.String(), s.pricesWhere(func(i analyzer.Impression) bool {
			return i.Notification.ADX == "MoPub" && i.Device.OS == os
		}))
	}
	t.Notes = append(t.Notes, "paper: iOS median above Android despite Android's volume lead")
	return t
}

// Figure11 reports the distribution of cleartext cost per IAB category on
// the MoPub slice of a two-month window (July–August), as in the paper.
func (s *Study) Figure11() *Table {
	t := &Table{
		ID:     "Figure 11",
		Title:  "Cost per IAB category (MoPub, 2-month subset)",
		Header: []string{"IAB", "name", "n", "p25", "median", "p75"},
	}
	byCat := map[iab.Category][]float64{}
	for _, imp := range s.Analysis.Impressions {
		if imp.Notification.Kind != nurl.Cleartext || imp.Notification.ADX != "MoPub" {
			continue
		}
		if imp.Month != 7 && imp.Month != 8 {
			continue
		}
		byCat[imp.Category] = append(byCat[imp.Category], imp.Notification.PriceCPM)
	}
	cats := make([]iab.Category, 0, len(byCat))
	for c := range byCat {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
	for _, c := range cats {
		prices := byCat[c]
		sum, err := stats.Summarize(prices)
		if err != nil {
			continue
		}
		t.AddRow(c.String(), c.Name(), fmt.Sprint(sum.N),
			FormatCPM(sum.P25), FormatCPM(sum.P50), FormatCPM(sum.P75))
	}
	t.Notes = append(t.Notes,
		"paper: IAB3 (Business) draws up to ~5 CPM at p50; IAB15 (Science) stays under 0.2 CPM")
	return t
}

// Figure12 reports slot-size popularity per month for the headline
// formats, exposing the May 2015 MPU takeover.
func (s *Study) Figure12() *Table {
	t := &Table{
		ID:     "Figure 12",
		Title:  "Ad-slot size popularity through time",
		Header: []string{"month", "320x50", "300x250", "728x90", "others"},
	}
	counts := map[int]map[rtb.Slot]int{}
	for _, imp := range s.Analysis.Impressions {
		n := imp.Notification
		if n.Width == 0 {
			continue
		}
		if counts[imp.Month] == nil {
			counts[imp.Month] = map[rtb.Slot]int{}
		}
		counts[imp.Month][rtb.Slot{W: n.Width, H: n.Height}]++
	}
	for m := 1; m <= 12; m++ {
		total := 0
		for _, n := range counts[m] {
			total += n
		}
		if total == 0 {
			t.AddRow(fmt.Sprintf("%02d", m), "-", "-", "-", "-")
			continue
		}
		banner := counts[m][rtb.Slot320x50]
		mpu := counts[m][rtb.Slot300x250]
		lead := counts[m][rtb.Slot728x90]
		t.AddRow(fmt.Sprintf("%02d", m),
			FormatPct(float64(banner)/float64(total)),
			FormatPct(float64(mpu)/float64(total)),
			FormatPct(float64(lead)/float64(total)),
			FormatPct(float64(total-banner-mpu-lead)/float64(total)))
	}
	t.Notes = append(t.Notes,
		"paper: 300x250 MPUs overtake 320x50 large banners from May 2015 on")
	return t
}

// turnSlots are the Figure 13/14 x-axis sizes, ascending area.
var turnSlots = []rtb.Slot{
	rtb.Slot320x50, rtb.Slot468x60, rtb.Slot728x90, rtb.Slot120x600,
	rtb.Slot300x250, rtb.Slot160x600, rtb.Slot300x600,
}

// Figure13 reports cleartext charge prices per slot size on the Turn
// slice (the entity that carries slot dimensions in its nURLs).
func (s *Study) Figure13() *Table {
	t := &Table{
		ID:     "Figure 13",
		Title:  "Charge prices per ad-slot size (Turn slice, sorted by area)",
		Header: []string{"slot", "n", "p5", "p10", "median", "p90", "p95"},
	}
	for _, sl := range turnSlots {
		sl := sl
		summaryRow(t, sl.String(), s.pricesWhere(func(i analyzer.Impression) bool {
			n := i.Notification
			return n.ADX == "Turn" && n.Width == sl.W && n.Height == sl.H
		}))
	}
	t.Notes = append(t.Notes,
		"paper: the most expensive slots are NOT the largest — MPU 0.47 and Monster MPU 0.39 CPM medians")
	return t
}

// Figure14 reports the accumulated revenue share per slot size on the
// Turn slice.
func (s *Study) Figure14() *Table {
	t := &Table{
		ID:     "Figure 14",
		Title:  "Accumulated revenue per ad-slot size (Turn slice)",
		Header: []string{"slot", "impressions", "revenue CPM", "revenue share"},
	}
	rev := map[rtb.Slot]float64{}
	cnt := map[rtb.Slot]int{}
	total := 0.0
	for _, imp := range s.Analysis.Impressions {
		n := imp.Notification
		if n.ADX != "Turn" || n.Kind != nurl.Cleartext || n.Width == 0 {
			continue
		}
		sl := rtb.Slot{W: n.Width, H: n.Height}
		rev[sl] += n.PriceCPM
		cnt[sl]++
		total += n.PriceCPM
	}
	for _, sl := range turnSlots {
		share := 0.0
		if total > 0 {
			share = rev[sl] / total
		}
		t.AddRow(sl.String(), fmt.Sprint(cnt[sl]), FormatCPM(rev[sl]), FormatPct(share))
	}
	t.Notes = append(t.Notes,
		"paper: MPU and leaderboard accumulate 64.3% and 20.6% of Turn's RTB revenue")
	return t
}

// Section44 reports the app-vs-web price gap.
func (s *Study) Section44() *Table {
	t := &Table{
		ID:     "Section 4.4",
		Title:  "Web vs apps: mean cleartext charge price",
		Header: []string{"origin", "n", "mean CPM", "median CPM"},
	}
	for _, o := range []useragent.Origin{useragent.MobileApp, useragent.MobileWeb} {
		o := o
		prices := s.pricesWhere(func(i analyzer.Impression) bool {
			return i.Device.Origin == o
		})
		mean, err := stats.Mean(prices)
		med, _ := stats.Median(prices)
		if err != nil {
			t.AddRow(o.String(), "0", "-", "-")
			continue
		}
		t.AddRow(o.String(), fmt.Sprint(len(prices)), FormatCPM(mean), FormatCPM(med))
	}
	appMean, _ := stats.Mean(s.pricesWhere(func(i analyzer.Impression) bool {
		return i.Device.Origin == useragent.MobileApp
	}))
	webMean, _ := stats.Mean(s.pricesWhere(func(i analyzer.Impression) bool {
		return i.Device.Origin == useragent.MobileWeb
	}))
	if webMean > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"app/web mean ratio = %.2f (paper: 2.6x — 0.712 vs 0.273 CPM)", appMean/webMean))
	}
	return t
}
