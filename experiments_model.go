package yourandvalue

import (
	"fmt"
	"sort"

	"yourandvalue/internal/analyzer"
	"yourandvalue/internal/campaign"
	"yourandvalue/internal/core"
	"yourandvalue/internal/iab"
	"yourandvalue/internal/mlkit"
	"yourandvalue/internal/nurl"
	"yourandvalue/internal/stats"
)

// Section51 runs the dimensionality-reduction bootstrap: full Table 4
// feature space vs the selected S subset, with the precision/recall loss
// the paper bounds at <2% and <6%.
func (s *Study) Section51(sampleCap int) (*Table, error) {
	pme := core.NewPME(s.Config.Seed + 10)
	pme.ForestSize = min(s.Config.ForestSize, 20)
	red, err := pme.ReduceDimensions(s.Analysis, sampleCap)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Section 5.1",
		Title:  "Dimensionality reduction: full feature space F vs selected subset S",
		Header: []string{"model", "features", "precision", "recall", "AUC-ROC"},
	}
	t.AddRow("full F", fmt.Sprint(red.FullDim),
		FormatPct(red.FullReport.Precision), FormatPct(red.FullReport.Recall),
		fmt.Sprintf("%.3f", red.FullReport.AUCROC))
	t.AddRow("reduced S", fmt.Sprint(red.ReducedDim),
		FormatPct(red.ReducedReport.Precision), FormatPct(red.ReducedReport.Recall),
		fmt.Sprintf("%.3f", red.ReducedReport.AUCROC))
	t.AddRow("loss", "-",
		FormatPct(red.PrecisionLoss), FormatPct(red.RecallLoss), "-")

	groups := make([]string, 0, len(red.GroupImportance))
	for g := range red.GroupImportance {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool {
		return red.GroupImportance[groups[i]] > red.GroupImportance[groups[j]]
	})
	for _, g := range groups {
		t.Notes = append(t.Notes, fmt.Sprintf("group %-5s importance %s",
			g, FormatPct(red.GroupImportance[g])))
	}
	t.Notes = append(t.Notes, "paper: precision loss <2%, recall loss <6% after 288→8-feature reduction")
	return t, nil
}

// Table5Section52 reports the campaign-planning arithmetic: the 144-setup
// grid and the §5.2 margin-of-error/sample-size numbers, evaluated on the
// observed campaign price moments.
func (s *Study) Table5Section52() *Table {
	t := &Table{
		ID:     "Table 5 / §5.2",
		Title:  "Campaign grid and sample-size planning",
		Header: []string{"quantity", "value"},
	}
	grid := campaign.Grid(nil)
	t.AddRow("experimental setups", fmt.Sprint(len(grid)))

	prices := append(s.A1.Prices(), s.A2.Prices()...)
	mean, _ := stats.Mean(prices)
	std, _ := stats.StdDev(prices)
	t.AddRow("campaign price mean (CPM)", FormatCPM(mean))
	t.AddRow("campaign price std (CPM)", FormatCPM(std))

	if d, err := stats.MarginOfError(std, len(grid), 0.95); err == nil {
		t.AddRow("95% CI margin with 144 setups (CPM)", FormatCPM(d))
	}
	if n, err := stats.SampleSizeForMean(std, 0.35, 0.95); err == nil {
		t.AddRow("setups needed for ±0.35 CPM", fmt.Sprint(n))
	}
	// Within-setup spread drives the per-campaign impression minimum.
	if n, err := campaign.PlanImpressions(0.694, 0.1, 0.95); err == nil {
		t.AddRow("min impressions per campaign (±0.1 CPM, paper spread)", fmt.Sprint(n))
	}
	t.AddRow("A1 spend (USD)", fmt.Sprintf("%.2f", s.A1.SpentUSD))
	t.AddRow("A2 spend (USD)", fmt.Sprintf("%.2f", s.A2.SpentUSD))
	t.AddRow("A1 win rate", FormatPct(s.A1.WinRate()))
	t.Notes = append(t.Notes,
		"paper: m=1.84 sd=2.15 CPM → ±0.35 CPM at 95% CI with 144 setups; ≥185 imps per campaign for ±0.1")
	return t
}

// Figure15 compares per-IAB CPM across the three sources: the 2-month
// MoPub slice of D, the cleartext campaign (A2), and the encrypted
// campaign (A1).
func (s *Study) Figure15() *Table {
	t := &Table{
		ID:     "Figure 15",
		Title:  "CPM per IAB category: dataset vs probing campaigns",
		Header: []string{"IAB", "D-MoPub median", "A2 clr median", "A1 enc median"},
	}
	dPrices := map[iab.Category][]float64{}
	for _, imp := range s.Analysis.Impressions {
		if imp.Notification.ADX != "MoPub" || imp.Notification.Kind != nurl.Cleartext {
			continue
		}
		if imp.Month != 7 && imp.Month != 8 {
			continue
		}
		dPrices[imp.Category] = append(dPrices[imp.Category], imp.Notification.PriceCPM)
	}
	a1 := map[iab.Category][]float64{}
	for _, r := range s.A1.Records {
		a1[r.Category] = append(a1[r.Category], r.ChargeCPM)
	}
	a2 := map[iab.Category][]float64{}
	for _, r := range s.A2.Records {
		a2[r.Category] = append(a2[r.Category], r.ChargeCPM)
	}
	var common []iab.Category
	for c := range a1 {
		if len(a2[c]) > 0 && len(dPrices[c]) > 0 {
			common = append(common, c)
		}
	}
	sort.Slice(common, func(i, j int) bool { return common[i] < common[j] })
	higher := 0
	for _, c := range common {
		md, _ := stats.Median(dPrices[c])
		m2, _ := stats.Median(a2[c])
		m1, _ := stats.Median(a1[c])
		if m1 > m2 {
			higher++
		}
		t.AddRow(c.String(), FormatCPM(md), FormatCPM(m2), FormatCPM(m1))
	}
	if len(common) > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"encrypted median above cleartext in %d/%d common categories (paper: always higher)",
			higher, len(common)))
	}
	return t
}

// Section54 reports the encrypted-price classifier's cross-validated
// metrics — the paper's headline TP=82.9%, FP=6.8%, Precision=83.5%,
// Recall=82.9%, AUC-ROC=0.964.
func (s *Study) Section54() *Table {
	m := s.Model.Metrics
	t := &Table{
		ID:     "Section 5.4",
		Title:  "Encrypted-price classifier (10-fold CV on A1 ground truth)",
		Header: []string{"metric", "measured", "paper"},
	}
	t.AddRow("classes", fmt.Sprint(m.Classes), "4")
	t.AddRow("training records", fmt.Sprint(m.TrainSize), "632,667")
	t.AddRow("TP rate / accuracy", FormatPct(m.Accuracy), "82.9%")
	t.AddRow("FP rate", FormatPct(m.FPRate), "6.8%")
	t.AddRow("precision", FormatPct(m.Precision), "83.5%")
	t.AddRow("recall", FormatPct(m.Recall), "82.9%")
	t.AddRow("AUC-ROC", fmt.Sprintf("%.3f", m.AUCROC), "0.964")
	t.AddRow("time-shift coefficient", fmt.Sprintf("%.3f", s.Model.TimeShift), "(2015→2016)")
	return t
}

// AblationClasses retrains the §5.4 classifier with different price-class
// counts; the paper found 4 optimal against 5–10.
func (s *Study) AblationClasses(ks []int) (*Table, error) {
	t := &Table{
		ID:     "Ablation: classes",
		Title:  "Price-class count vs classifier quality",
		Header: []string{"classes", "accuracy", "chance", "lift", "AUC-ROC"},
	}
	for _, k := range ks {
		pme := core.NewPME(s.Config.Seed + 20)
		pme.Classes = k
		pme.ForestSize = min(s.Config.ForestSize, 20)
		pme.CVFolds, pme.CVRuns = 5, 1
		m, err := pme.Train(s.A1.Records, core.TrainConfig{})
		if err != nil {
			return nil, err
		}
		chance := 1.0 / float64(k)
		t.AddRow(fmt.Sprint(k), FormatPct(m.Metrics.Accuracy), FormatPct(chance),
			fmt.Sprintf("%.2fx", m.Metrics.Accuracy/chance),
			fmt.Sprintf("%.3f", m.Metrics.AUCROC))
	}
	t.Notes = append(t.Notes, "paper: 4 classes outperformed 5-10 for price estimation")
	return t, nil
}

// AblationPublisher reproduces the §5.4 overfitting caution: publisher
// identity raises apparent CV accuracy but does not generalize.
func (s *Study) AblationPublisher() (*Table, error) {
	t := &Table{
		ID:     "Ablation: publisher feature",
		Title:  "Exact-publisher identity vs IAB-only features",
		Header: []string{"variant", "features", "CV accuracy", "AUC-ROC"},
	}
	pme := core.NewPME(s.Config.Seed + 21)
	pme.ForestSize = min(s.Config.ForestSize, 16)
	pme.CVFolds, pme.CVRuns = 5, 1
	without, err := pme.Train(s.A1.Records, core.TrainConfig{})
	if err != nil {
		return nil, err
	}
	with, err := pme.Train(s.A1.Records, core.TrainConfig{WithPublishers: true})
	if err != nil {
		return nil, err
	}
	t.AddRow("IAB only (shipped)", fmt.Sprint(without.Features.Dim()),
		FormatPct(without.Metrics.Accuracy), fmt.Sprintf("%.3f", without.Metrics.AUCROC))
	t.AddRow("+publisher (overfits)", fmt.Sprint(with.Features.Dim()),
		FormatPct(with.Metrics.Accuracy), fmt.Sprintf("%.3f", with.Metrics.AUCROC))
	t.Notes = append(t.Notes,
		"paper: 82.9% → 95% with publisher, rejected as overfitting (campaign publishers ⊂ web)")
	return t, nil
}

// AblationModelFamily compares the RF against a single CART tree and the
// regression-to-the-mean strawman (§5.4 notes plain regressions performed
// poorly).
func (s *Study) AblationModelFamily() (*Table, error) {
	t := &Table{
		ID:     "Ablation: model family",
		Title:  "Estimator family vs per-impression error on campaign holdout",
		Header: []string{"model", "median abs err (CPM)", "mean abs err (CPM)"},
	}
	records := s.A1.Records
	if len(records) < 100 {
		return nil, core.ErrNoTrainingData
	}
	// Deterministic interleaved 80/20 split: records arrive grouped by
	// setup, so stratify by taking every fifth record as test.
	var train, test []campaign.Record
	for i, r := range records {
		if i%5 == 4 {
			test = append(test, r)
		} else {
			train = append(train, r)
		}
	}

	pme := core.NewPME(s.Config.Seed + 22)
	pme.ForestSize = min(s.Config.ForestSize, 20)
	pme.CVFolds, pme.CVRuns = 5, 1
	model, err := pme.Train(train, core.TrainConfig{})
	if err != nil {
		return nil, err
	}
	trainPrices := make([]float64, len(train))
	trainX := make([][]float64, len(train))
	for i, r := range train {
		trainPrices[i] = r.ChargeCPM
		trainX[i] = model.Features.FromRecord(r)
	}
	meanPrice, _ := stats.Mean(trainPrices)
	// The §5.4 regression attempt, as a real CART regression tree over the
	// same S features.
	regTree, err := mlkit.TrainRegressionTree(trainX, trainPrices, mlkit.TreeConfig{
		MaxDepth: 12, MinLeaf: 5, Seed: s.Config.Seed + 23,
	})
	if err != nil {
		return nil, err
	}

	abs := func(v float64) float64 {
		if v < 0 {
			return -v
		}
		return v
	}
	var errForest, errTree, errReg, errMean []float64
	for _, r := range test {
		x := model.Features.FromRecord(r)
		errForest = append(errForest, abs(model.EstimateCPM(x)-r.ChargeCPM))
		errTree = append(errTree, abs(model.EstimateCPMTree(x)-r.ChargeCPM))
		errReg = append(errReg, abs(regTree.Predict(x)-r.ChargeCPM))
		errMean = append(errMean, abs(meanPrice-r.ChargeCPM))
	}
	for _, row := range []struct {
		name string
		errs []float64
	}{
		{"random forest (shipped)", errForest},
		{"single CART tree (client)", errTree},
		{"CART regression tree", errReg},
		{"mean-price regression", errMean},
	} {
		med, _ := stats.Median(row.errs)
		mean, _ := stats.Mean(row.errs)
		t.AddRow(row.name, FormatCPM(med), FormatCPM(mean))
	}
	t.Notes = append(t.Notes, "paper: regression had high error; classification over 4 classes shipped")
	return t, nil
}

// Figure16 compares the encrypted and cleartext price distributions across
// datasets and time periods.
func (s *Study) Figure16() *Table {
	t := &Table{
		ID:     "Figure 16",
		Title:  "Price distributions: encrypted vs cleartext across periods",
		Header: []string{"series", "n", "p25", "median", "p75", "p95"},
	}
	series := []struct {
		name   string
		prices []float64
	}{
		{"A1-encrypted'16", s.A1.Prices()},
		{"A2-mopub'16", s.A2.Prices()},
		{"D-cleartext'15", s.pricesWhere(nil)},
		{"D-mopub'15", s.pricesWhere(func(i analyzer.Impression) bool {
			return i.Notification.ADX == "MoPub"
		})},
		{"D-mopub'15(2m)", s.pricesWhere(func(i analyzer.Impression) bool {
			return i.Notification.ADX == "MoPub" && (i.Month == 7 || i.Month == 8)
		})},
	}
	medians := map[string]float64{}
	for _, sr := range series {
		sum, err := stats.Summarize(sr.prices)
		if err != nil {
			t.AddRow(sr.name, "0", "-", "-", "-", "-")
			continue
		}
		medians[sr.name] = sum.P50
		t.AddRow(sr.name, fmt.Sprint(sum.N), FormatCPM(sum.P25),
			FormatCPM(sum.P50), FormatCPM(sum.P75), FormatCPM(sum.P95))
	}
	if medians["A2-mopub'16"] > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"encrypted/cleartext median ratio (A1/A2) = %.2f (paper ≈1.7)",
			medians["A1-encrypted'16"]/medians["A2-mopub'16"]))
	}
	if medians["D-mopub'15"] > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"2016/2015 cleartext shift (A2 / D-mopub) = %.2f (the §6.2 time correction)",
			medians["A2-mopub'16"]/medians["D-mopub'15"]))
	}
	// KS test: A1 vs A2 distributions genuinely differ.
	if ks, err := stats.KolmogorovSmirnov(s.A1.Prices(), s.A2.Prices()); err == nil {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"KS A1-vs-A2: D=%.3f p=%.2g (paper: distributions 'distinctly different')", ks.D, ks.P))
	}
	return t
}
