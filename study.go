// Package yourandvalue reproduces "If you are not paying for it, you are
// the product: How much do advertisers pay to reach you?" (Papadopoulos,
// Kourtellis, Rodriguez, Laoutaris — IMC 2017) as a runnable system: a
// full RTB ecosystem simulator, the paper's Weblog Ads Analyzer, the
// probing ad-campaign engine, the Price Modeling Engine with its
// random-forest encrypted-price classifier, and the YourAdValue
// client-side cost estimator.
//
// The package is the public facade: Run executes the end-to-end study
// (trace → analysis → campaigns → model → per-user costs) and the
// Figure*/Table*/Section* methods regenerate every table and figure of
// the paper's evaluation as printable rows. See DESIGN.md for the system
// inventory and EXPERIMENTS.md for paper-vs-measured results.
package yourandvalue

import (
	"context"
	"fmt"

	"yourandvalue/internal/analyzer"
	"yourandvalue/internal/baseline"
	"yourandvalue/internal/campaign"
	"yourandvalue/internal/core"
	"yourandvalue/internal/rtb"
	"yourandvalue/internal/scenario"
	"yourandvalue/internal/stream"
	"yourandvalue/internal/weblog"
)

// Config sizes a study run. The zero value is invalid; start from
// DefaultConfig.
type Config struct {
	// Seed drives every random component; equal seeds give equal studies.
	Seed int64
	// Scale shrinks the paper-scale dataset (1,594 users / 78,560 RTB
	// impressions) for faster runs; 1.0 is full scale.
	Scale float64
	// CampaignImpressionsPerSetup is the per-setup delivery target for
	// the probing campaigns (§5.2 derives a 185 minimum at full rigor).
	CampaignImpressionsPerSetup int
	// ForestSize is the PME's random-forest ensemble size.
	ForestSize int
	// CVFolds and CVRuns control the §5.4 evaluation protocol.
	CVFolds, CVRuns int
	// Scenario names the simulated world (internal/scenario registry);
	// empty selects "baseline", the paper's world.
	Scenario string
}

// DefaultConfig returns a configuration matching the paper's scale.
func DefaultConfig() Config {
	return Config{
		Seed:                        1,
		Scale:                       1.0,
		CampaignImpressionsPerSetup: 185,
		ForestSize:                  40,
		CVFolds:                     10,
		CVRuns:                      2,
	}
}

// QuickConfig returns a reduced configuration suitable for laptops and
// benchmarks (~5% of paper scale). The campaign target stays closer to
// full rigor than the trace scale: the PME's encrypted-price estimates
// (Figure 19's premium) need ≈100 impressions per setup to stabilize at
// this trace size.
func QuickConfig() Config {
	c := DefaultConfig()
	c.Scale = 0.05
	c.CampaignImpressionsPerSetup = 100
	c.CVRuns = 1
	return c
}

// Validate rejects configurations no stage can run under.
func (c Config) Validate() error {
	// Negated form so NaN (which fails every comparison) is rejected too.
	if !(c.Scale > 0 && c.Scale <= 1) {
		return fmt.Errorf("yourandvalue: scale %v out of (0,1]", c.Scale)
	}
	if c.CampaignImpressionsPerSetup <= 0 {
		return fmt.Errorf("yourandvalue: non-positive campaign target")
	}
	if _, err := scenario.Get(c.Scenario); err != nil {
		return fmt.Errorf("yourandvalue: %w", err)
	}
	return nil
}

// ResolvedScenario returns the scenario the study runs under (baseline
// when Config.Scenario is empty).
func (c Config) ResolvedScenario() scenario.Scenario {
	s, err := scenario.Get(c.Scenario)
	if err != nil {
		// Validate gates every pipeline; direct misuse still gets a
		// runnable world.
		return scenario.Default()
	}
	return s
}

// Study holds every artifact of one end-to-end run.
type Study struct {
	Config    Config
	Ecosystem *rtb.Ecosystem
	Trace     *weblog.Trace
	Analysis  *analyzer.Result
	A1        *campaign.Report // encrypted-exchange probing round
	A2        *campaign.Report // MoPub cleartext round
	Model     *core.Model
	Costs     map[int]*core.UserCost
	// Stream is the final aggregation snapshot (running totals and
	// top-K summaries) when the study ran via ExecuteStreaming; nil for
	// batch runs.
	Stream   *stream.Snapshot
	Baseline *baseline.Estimator
}

// Run executes the complete pipeline of the paper:
//
//  1. generate the year-long weblog D through simulated RTB auctions,
//  2. analyze it with the Weblog Ads Analyzer (§4),
//  3. run the A1 (encrypted) and A2 (cleartext) probing campaigns (§5.2–5.3),
//  4. train the PME model on A1 ground truth (§5.4),
//  5. estimate every user's total advertiser cost (§6).
//
// Run is a compatibility wrapper over the staged Pipeline API; callers
// needing cancellation, progress observation, or stage-artifact reuse
// should use NewPipeline directly.
func Run(cfg Config) (*Study, error) {
	p, err := NewPipeline(WithConfig(cfg))
	if err != nil {
		return nil, err
	}
	return p.Execute(context.Background())
}
