package yourandvalue

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"yourandvalue/internal/core"
)

// tinyOptions is the smallest configuration the pipeline tests share.
func tinyOptions() []Option {
	return []Option{
		WithScale(0.02),
		WithSeed(7),
		WithCampaignImpressions(15),
		WithForestSize(8),
		WithCrossValidation(3, 1),
	}
}

func tinyConfig() Config {
	return Config{
		Seed: 7, Scale: 0.02, CampaignImpressionsPerSetup: 15,
		ForestSize: 8, CVFolds: 3, CVRuns: 1,
	}
}

// TestPipelineMatchesRun: the options API and the Run(Config) wrapper
// must describe the same study — equal seeds, equal artifacts.
func TestPipelineMatchesRun(t *testing.T) {
	p, err := NewPipeline(tinyOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.Config(), tinyConfig(); got != want {
		t.Fatalf("options resolved to %+v, want %+v", got, want)
	}
	a, err := p.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trace.Requests) != len(b.Trace.Requests) {
		t.Fatal("traces differ")
	}
	for _, pair := range [][2]string{
		{a.Figure2().String(), b.Figure2().String()},
		{a.Figure17().String(), b.Figure17().String()},
		{a.Section54().String(), b.Section54().String()},
	} {
		if pair[0] != pair[1] {
			t.Fatalf("pipeline and Run disagree under equal seeds:\n%s\nvs\n%s",
				pair[0], pair[1])
		}
	}
}

func TestNewPipelineValidates(t *testing.T) {
	if _, err := NewPipeline(WithScale(0)); err == nil {
		t.Error("zero scale accepted")
	}
	if _, err := NewPipeline(WithScale(2)); err == nil {
		t.Error("scale > 1 accepted")
	}
	if _, err := NewPipeline(WithCampaignImpressions(0)); err == nil {
		t.Error("zero campaign target accepted")
	}
	p, err := NewPipeline(WithWorkers(-3))
	if err != nil {
		t.Fatal(err)
	}
	if p.workers < 1 {
		t.Errorf("workers = %d, want >= 1", p.workers)
	}
}

// TestPipelineCancellation: a context cancelled while the campaign stage
// runs must abort the study mid-stage with ctx's error.
func TestPipelineCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	var failed []Stage
	opts := append(tinyOptions(), WithProgress(func(ev StageEvent) {
		mu.Lock()
		defer mu.Unlock()
		// Pull the plug the moment the campaign stage starts.
		if ev.Stage == StageRunCampaigns && ev.State == StageStarted {
			cancel()
		}
		if ev.State == StageFailed {
			failed = append(failed, ev.Stage)
		}
	}))
	p, err := NewPipeline(opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	found := false
	for _, st := range failed {
		if st == StageRunCampaigns {
			found = true
		}
	}
	if !found {
		t.Errorf("campaign stage should report failure, failed stages: %v", failed)
	}

	// A context cancelled before the first stage never starts the study.
	pre, cancelPre := context.WithCancel(context.Background())
	cancelPre()
	if _, err := p.GenerateTrace(pre); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled GenerateTrace: %v", err)
	}
}

// TestPipelineArtifactReuse: stage artifacts are plain values — a second
// pipeline can retrain on an existing trace/campaign pair without
// regenerating either, and retraining is deterministic.
func TestPipelineArtifactReuse(t *testing.T) {
	ctx := context.Background()
	p, err := NewPipeline(tinyOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := p.GenerateTrace(ctx)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Analyze(ctx, tr)
	if err != nil {
		t.Fatal(err)
	}
	camps, err := p.RunCampaigns(ctx, tr)
	if err != nil {
		t.Fatal(err)
	}

	m1, err := p.TrainModel(ctx, res, camps)
	if err != nil {
		t.Fatal(err)
	}
	// Same artifacts, same config → identical model metrics.
	m2, err := p.TrainModel(ctx, res, camps)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Metrics != m2.Metrics {
		t.Errorf("retrain on reused artifacts not deterministic:\n%+v\nvs\n%+v",
			m1.Metrics, m2.Metrics)
	}

	// A differently-tuned pipeline retrains on the same artifacts.
	p2, err := NewPipeline(append(tinyOptions(), WithForestSize(4))...)
	if err != nil {
		t.Fatal(err)
	}
	m3, err := p2.TrainModel(ctx, res, camps)
	if err != nil {
		t.Fatal(err)
	}
	if m3.Metrics.TrainSize != len(camps.A1.Records) {
		t.Errorf("retrained on %d records, campaign has %d",
			m3.Metrics.TrainSize, len(camps.A1.Records))
	}

	// And the cost stage runs from reused artifacts too.
	costs, err := p.EstimateCosts(ctx, res, m1)
	if err != nil {
		t.Fatal(err)
	}
	if len(costs) == 0 {
		t.Error("no costs estimated")
	}

	// Stage methods reject missing artifacts instead of panicking.
	if _, err := p.Analyze(ctx, nil); err == nil {
		t.Error("Analyze(nil) accepted")
	}
	if _, err := p.RunCampaigns(ctx, &TraceArtifact{}); err == nil {
		t.Error("RunCampaigns(empty) accepted")
	}
	if _, err := p.TrainModel(ctx, res, nil); err == nil {
		t.Error("TrainModel(nil campaigns) accepted")
	}
	if _, err := p.EstimateCosts(ctx, nil, m1); err == nil {
		t.Error("EstimateCosts(nil analysis) accepted")
	}
}

// TestPipelineProgressEvents: every stage of a full Execute reports a
// start and a completion.
func TestPipelineProgressEvents(t *testing.T) {
	var mu sync.Mutex
	counts := map[Stage]map[StageState]int{}
	opts := append(tinyOptions(), WithProgress(func(ev StageEvent) {
		mu.Lock()
		defer mu.Unlock()
		if counts[ev.Stage] == nil {
			counts[ev.Stage] = map[StageState]int{}
		}
		counts[ev.Stage][ev.State]++
		if ev.State == StageCompleted && ev.Elapsed < 0 {
			t.Errorf("stage %s negative elapsed", ev.Stage)
		}
	}))
	p, err := NewPipeline(opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, st := range []Stage{StageGenerateTrace, StageAnalyze,
		StageRunCampaigns, StageTrainModel, StageEstimateCosts} {
		if counts[st][StageStarted] != 1 || counts[st][StageCompleted] != 1 {
			t.Errorf("stage %s events = %v", st, counts[st])
		}
	}
}

// TestExecuteStreamingMatchesBatch: the streaming cost path must yield
// per-user costs identical to the batch EstimateCosts path for the same
// seed, at every worker count (the PR's equivalence guarantee; CI also
// runs this under -race).
func TestExecuteStreamingMatchesBatch(t *testing.T) {
	ctx := context.Background()
	p, err := NewPipeline(tinyOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := p.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 8} {
		p2, err := NewPipeline(append(tinyOptions(), WithWorkers(workers))...)
		if err != nil {
			t.Fatal(err)
		}
		streamed, err := p2.ExecuteStreaming(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(streamed.Costs, batch.Costs) {
			t.Fatalf("streaming costs (workers=%d) differ from batch", workers)
		}
		if streamed.Stream == nil {
			t.Fatal("streaming study carries no snapshot")
		}
		if streamed.Stream.Users != len(streamed.Costs) {
			t.Errorf("snapshot users = %d, want %d", streamed.Stream.Users, len(streamed.Costs))
		}
		// Derived figures agree because the cost maps agree.
		if got, want := streamed.Figure17().String(), batch.Figure17().String(); got != want {
			t.Fatalf("Figure 17 differs between streaming and batch:\n%s\nvs\n%s", got, want)
		}
	}

	// The streaming stage reports progress under its own stage name.
	var mu sync.Mutex
	seen := false
	p3, err := NewPipeline(append(tinyOptions(), WithProgress(func(ev StageEvent) {
		mu.Lock()
		defer mu.Unlock()
		if ev.Stage == StageStreamCosts && ev.State == StageCompleted {
			seen = true
		}
	}))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p3.ExecuteStreaming(ctx); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if !seen {
		t.Error("no StageStreamCosts completion event observed")
	}
}

// TestEstimateCostsStreamingValidates: the streaming stage rejects
// missing artifacts like every other stage method.
func TestEstimateCostsStreamingValidates(t *testing.T) {
	p, err := NewPipeline(tinyOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.EstimateCostsStreaming(context.Background(), nil, nil); err == nil {
		t.Error("nil source and model accepted")
	}
}

// TestBatchEstimateShardingDeterministic: the sharded cost stage must be
// bit-identical to the sequential path for any worker count.
func TestBatchEstimateShardingDeterministic(t *testing.T) {
	s := quickStudy(t)
	seq, err := core.BatchEstimateContext(context.Background(), s.Analysis, s.Model, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		par, err := core.BatchEstimateContext(context.Background(), s.Analysis, s.Model, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("sharded estimate (workers=%d) differs from sequential", workers)
		}
	}
	if !reflect.DeepEqual(seq, s.Costs) {
		t.Fatal("study costs differ from direct BatchEstimate")
	}
}
