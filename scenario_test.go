package yourandvalue

import (
	"context"
	"testing"

	"yourandvalue/internal/scenario"
)

// TestPipelineScenarios runs named worlds beyond baseline end to end —
// trace, analysis, campaigns, training, per-user costs — pinning the
// acceptance criterion that scenarios are selectable from every entry
// point and flow through the whole stack.
func TestPipelineScenarios(t *testing.T) {
	for _, name := range []string{
		scenario.FirstPrice, scenario.MobileHeavy,
		scenario.EncryptedSurge, scenario.BotNoise,
	} {
		t.Run(name, func(t *testing.T) {
			p, err := NewPipeline(
				WithScenario(name),
				WithScale(0.02),
				WithSeed(11),
				WithCampaignImpressions(15),
				WithForestSize(8),
				WithCrossValidation(4, 1),
			)
			if err != nil {
				t.Fatal(err)
			}
			if p.Config().ResolvedScenario().Name != name {
				t.Fatalf("resolved scenario = %q", p.Config().ResolvedScenario().Name)
			}
			study, err := p.Execute(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if study.Trace.RTBCount() == 0 {
				t.Fatal("no impressions generated")
			}
			if len(study.Costs) == 0 {
				t.Fatal("no user costs estimated")
			}
			if study.Config.Scenario != name {
				t.Fatalf("study config scenario = %q", study.Config.Scenario)
			}
		})
	}
}

// TestScenarioShiftsCosts: the same seed under first-price clears
// strictly more advertiser spend than baseline — the scenario knob
// reaches the ground-truth ledger, not just labels.
func TestScenarioShiftsCosts(t *testing.T) {
	spend := func(name string) float64 {
		p, err := NewPipeline(
			WithScenario(name), WithScale(0.02), WithSeed(5),
			WithCampaignImpressions(15), WithForestSize(8), WithCrossValidation(4, 1),
		)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := p.GenerateTrace(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for _, imp := range tr.Trace.Impressions {
			total += imp.ChargeCPM
		}
		return total
	}
	base := spend(scenario.Baseline)
	first := spend(scenario.FirstPrice)
	if first <= base {
		t.Errorf("first-price ground-truth spend %v should exceed baseline %v", first, base)
	}
}

// TestWithScenarioValidates: unknown worlds fail construction, and the
// empty name resolves to baseline.
func TestWithScenarioValidates(t *testing.T) {
	if _, err := NewPipeline(WithScenario("marsnet")); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	p, err := NewPipeline()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Config().ResolvedScenario().Name; got != scenario.Baseline {
		t.Fatalf("default scenario = %q", got)
	}
}
