package yourandvalue

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (DESIGN.md maps each benchmark to its experiment) and
// measures the hot paths of the library. Each figure benchmark logs the
// produced rows once, so `go test -bench . -benchmem` doubles as the
// experiment reproduction run recorded in EXPERIMENTS.md.

import (
	"context"
	"runtime"
	"testing"

	"yourandvalue/internal/analyzer"
	"yourandvalue/internal/baseline"
	"yourandvalue/internal/campaign"
	"yourandvalue/internal/core"
	"yourandvalue/internal/detect"
	"yourandvalue/internal/geoip"
	"yourandvalue/internal/nurl"
	"yourandvalue/internal/priceenc"
	"yourandvalue/internal/rtb"
	"yourandvalue/internal/stream"
	"yourandvalue/internal/trafficclass"
	"yourandvalue/internal/useragent"
	"yourandvalue/internal/weblog"
)

// benchTable runs a table generator under the benchmark clock and logs the
// result once.
func benchTable(b *testing.B, gen func() *Table) {
	b.Helper()
	var tbl *Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl = gen()
	}
	b.StopTimer()
	if tbl != nil {
		b.Logf("\n%s", tbl.String())
	}
}

func BenchmarkTable1NURLParsing(b *testing.B) {
	s := quickStudy(b)
	benchTable(b, s.Table1)
}

func BenchmarkFigure2EncryptedPairsOverTime(b *testing.B) {
	s := quickStudy(b)
	benchTable(b, s.Figure2)
}

func BenchmarkFigure3CleartextVsRTBShare(b *testing.B) {
	s := quickStudy(b)
	benchTable(b, s.Figure3)
}

func BenchmarkTable3DatasetSummary(b *testing.B) {
	s := quickStudy(b)
	benchTable(b, s.Table3)
}

func BenchmarkFigure5PricePerCity(b *testing.B) {
	s := quickStudy(b)
	benchTable(b, s.Figure5)
}

func BenchmarkFigure6PriceByTimeOfDay(b *testing.B) {
	s := quickStudy(b)
	benchTable(b, s.Figure6)
}

func BenchmarkFigure7PriceByDayOfWeek(b *testing.B) {
	s := quickStudy(b)
	benchTable(b, s.Figure7)
}

func BenchmarkFigure8RTBShareByOS(b *testing.B) {
	s := quickStudy(b)
	benchTable(b, s.Figure8)
}

func BenchmarkFigure9NormalizedRTBShare(b *testing.B) {
	s := quickStudy(b)
	benchTable(b, s.Figure9)
}

func BenchmarkFigure10PricePerOS(b *testing.B) {
	s := quickStudy(b)
	benchTable(b, s.Figure10)
}

func BenchmarkFigure11CostPerIAB(b *testing.B) {
	s := quickStudy(b)
	benchTable(b, s.Figure11)
}

func BenchmarkFigure12SlotPopularity(b *testing.B) {
	s := quickStudy(b)
	benchTable(b, s.Figure12)
}

func BenchmarkFigure13PricePerSlot(b *testing.B) {
	s := quickStudy(b)
	benchTable(b, s.Figure13)
}

func BenchmarkFigure14RevenuePerSlot(b *testing.B) {
	s := quickStudy(b)
	benchTable(b, s.Figure14)
}

func BenchmarkSection44AppVsWeb(b *testing.B) {
	s := quickStudy(b)
	benchTable(b, s.Section44)
}

func BenchmarkSection51DimensionalityReduction(b *testing.B) {
	s := quickStudy(b)
	var tbl *Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := s.Section51(1200)
		if err != nil {
			b.Fatal(err)
		}
		tbl = t
	}
	b.StopTimer()
	b.Logf("\n%s", tbl.String())
}

func BenchmarkTable5CampaignPlanning(b *testing.B) {
	s := quickStudy(b)
	benchTable(b, s.Table5Section52)
}

func BenchmarkFigure15CampaignVsDataset(b *testing.B) {
	s := quickStudy(b)
	benchTable(b, s.Figure15)
}

func BenchmarkSection54ClassifierAccuracy(b *testing.B) {
	s := quickStudy(b)
	benchTable(b, s.Section54)
}

func BenchmarkFigure16EncVsClrDistributions(b *testing.B) {
	s := quickStudy(b)
	benchTable(b, s.Figure16)
}

func BenchmarkFigure17CumulativeUserCost(b *testing.B) {
	s := quickStudy(b)
	benchTable(b, s.Figure17)
}

func BenchmarkFigure18TotalClrVsEnc(b *testing.B) {
	s := quickStudy(b)
	benchTable(b, s.Figure18)
}

func BenchmarkFigure19AvgPricePerImpression(b *testing.B) {
	s := quickStudy(b)
	benchTable(b, s.Figure19)
}

func BenchmarkSection63Validation(b *testing.B) {
	s := quickStudy(b)
	benchTable(b, s.Section63)
}

func BenchmarkBaselineVsYourAdValue(b *testing.B) {
	s := quickStudy(b)
	benchTable(b, s.BaselineComparison)
}

// --- Ablation benchmarks (DESIGN.md "Ablations") ---

func BenchmarkAblationClasses(b *testing.B) {
	s := quickStudy(b)
	var tbl *Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := s.AblationClasses([]int{2, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
		tbl = t
	}
	b.StopTimer()
	b.Logf("\n%s", tbl.String())
}

func BenchmarkAblationModelFamily(b *testing.B) {
	s := quickStudy(b)
	var tbl *Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := s.AblationModelFamily()
		if err != nil {
			b.Fatal(err)
		}
		tbl = t
	}
	b.StopTimer()
	b.Logf("\n%s", tbl.String())
}

func BenchmarkAblationPublisherOverfit(b *testing.B) {
	s := quickStudy(b)
	var tbl *Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := s.AblationPublisher()
		if err != nil {
			b.Fatal(err)
		}
		tbl = t
	}
	b.StopTimer()
	b.Logf("\n%s", tbl.String())
}

// --- Pipeline vs sequential seed path ---

// benchConfig is a full study small enough to iterate under the
// benchmark clock.
func benchConfig() Config {
	return Config{
		Seed: 7, Scale: 0.03, CampaignImpressionsPerSetup: 40,
		ForestSize: 8, CVFolds: 3, CVRuns: 1,
	}
}

// runSequentialSeedPath replicates the shape of the seed repository's
// one-shot Run body: stages strictly in sequence, campaigns one after
// the other, cost estimation unsharded. (Auction demand now flows
// through per-campaign probe sessions everywhere, so the draws differ
// from the historical seed output; the stage structure and workload are
// what this baseline preserves.) It is the sequential path the staged
// pipeline must not regress against.
func runSequentialSeedPath(cfg Config) (*Study, error) {
	eco := rtb.NewEcosystem(rtb.EcosystemConfig{Seed: cfg.Seed + 1})
	wcfg := weblog.DefaultConfig().Scaled(cfg.Scale)
	wcfg.Seed = cfg.Seed
	wcfg.Ecosystem = eco
	trace := weblog.Generate(wcfg)

	res := analyzer.New(trace.Catalog.Directory()).Analyze(trace.Requests)

	eng := campaign.NewEngine(eco)
	a1, err := eng.Run(campaign.A1Config(trace.Catalog, cfg.CampaignImpressionsPerSetup, cfg.Seed+2))
	if err != nil {
		return nil, err
	}
	a2, err := eng.Run(campaign.A2Config(trace.Catalog, cfg.CampaignImpressionsPerSetup, cfg.Seed+3))
	if err != nil {
		return nil, err
	}

	pme := core.NewPME(cfg.Seed + 4)
	pme.ForestSize = cfg.ForestSize
	pme.CVFolds, pme.CVRuns = cfg.CVFolds, cfg.CVRuns
	model, err := pme.Train(a1.Records, core.TrainConfig{
		CleartextReference2015: res.CleartextPrices(func(i analyzer.Impression) bool {
			return i.Notification.ADX == campaign.CleartextADX
		}),
		CleartextCampaign: a2.Records,
	})
	if err != nil {
		return nil, err
	}
	return &Study{
		Config: cfg, Ecosystem: eco, Trace: trace, Analysis: res,
		A1: a1, A2: a2, Model: model,
		Costs:    core.BatchEstimate(res, model),
		Baseline: baseline.New(res),
	}, nil
}

func BenchmarkStudySequentialSeedPath(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := runSequentialSeedPath(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStudyPipelineStaged(b *testing.B) {
	p, err := NewPipeline(WithConfig(benchConfig()))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := p.Execute(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Streaming vs batch estimation ---

// BenchmarkStreamVsBatch compares per-user cost estimation throughput
// between the batch path (core.BatchEstimateContext over a pre-analyzed
// trace) and the streaming path (stream.Aggregator re-detecting and
// estimating online). Run with -benchmem: the streaming sub-benchmarks
// also show peak working-set behavior — "generate" never materializes
// the trace at all.
func BenchmarkStreamVsBatch(b *testing.B) {
	s := quickStudy(b)
	ctx := context.Background()
	workers := runtime.GOMAXPROCS(0)

	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.BatchEstimateContext(ctx, s.Analysis, s.Model, workers); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(s.Analysis.Impressions)), "impressions/op")
	})

	b.Run("stream-replay", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			src, err := stream.NewReplaySource(s.Trace)
			if err != nil {
				b.Fatal(err)
			}
			agg := stream.NewAggregator(s.Model, s.Trace.Catalog.Directory(),
				stream.WithShards(workers))
			if _, err := agg.Run(ctx, src); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(s.Trace.Requests)), "events/op")
	})

	b.Run("stream-generate", func(b *testing.B) {
		wcfg := weblog.DefaultConfig().Scaled(s.Config.Scale)
		wcfg.Seed = s.Config.Seed
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			src := stream.NewGeneratorSource(wcfg)
			agg := stream.NewAggregator(s.Model, src.Directory(),
				stream.WithShards(workers))
			if _, err := agg.Run(ctx, src); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Shared detection engine vs the pre-refactor string path ---

// BenchmarkDetectEngine pits the shared internal/detect engine (interned
// symbols, cached sub-lookups, allocation-free nURL parse, scratch-buffer
// encode) against the pre-refactor string path it replaced: uncached
// classification, net/url parsing, per-impression UA/geo lookups and a
// freshly allocated S vector per estimate. Run with -benchmem; the B/op
// gap is the refactor's headline.
func BenchmarkDetectEngine(b *testing.B) {
	s := quickStudy(b)
	reqs := s.Trace.Requests
	if len(reqs) > 30000 {
		reqs = reqs[:30000]
	}
	dir := s.Trace.Catalog.Directory()
	model := s.Model

	b.Run("engine", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng := detect.NewEngine(detect.Config{Directory: dir})
			vec := make([]float64, model.Features.Dim())
			for _, r := range reqs {
				em := eng.Step(r.Detect())
				if em.Detected && em.Impression.Encrypted() {
					model.Features.EncodeImpressionInto(vec, em.Impression)
					model.EstimateCPM(vec)
				}
			}
		}
		b.ReportMetric(float64(len(reqs)), "requests/op")
	})

	b.Run("legacy-strings", func(b *testing.B) {
		registry := nurl.Default()
		classifier := trafficclass.DefaultClassifier()
		geo := geoip.Default()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lastPage := make(map[int]string)
			for _, r := range reqs {
				switch classifier.Classify(r.Host) {
				case trafficclass.Rest:
					lastPage[r.UserID] = r.Host
				case trafficclass.Advertising:
					n, ok := registry.ParseReference(r.URL)
					if !ok {
						continue
					}
					pub := lastPage[r.UserID]
					if pub == "" {
						pub = n.Publisher
					}
					imp := analyzer.Impression{
						Time: r.Time, Month: int(r.Time.Month()), UserID: r.UserID,
						Notification: n,
						City:         geo.LookupString(r.ClientIP),
						Device:       useragent.Parse(r.UserAgent),
						Publisher:    pub,
						Category:     dir.Lookup(pub),
					}
					if imp.Encrypted() {
						model.EstimateCPM(model.Features.FromImpression(imp))
					}
				}
			}
		}
		b.ReportMetric(float64(len(reqs)), "requests/op")
	})

	// The estimate leg in isolation: same encoded vectors, three walks.
	// "pointer" is the pre-flat baseline (heap-scattered *Node chase per
	// tree), "flat" the SoA walk EstimateCPM now routes through, and
	// "flat-batch" the tree-major batch walk the server paths use.
	b.Run("estimate", func(b *testing.B) {
		eng := detect.NewEngine(detect.Config{Directory: dir})
		var vecs [][]float64
		for _, r := range reqs {
			em := eng.Step(r.Detect())
			if em.Detected && em.Impression.Encrypted() {
				vec := make([]float64, model.Features.Dim())
				model.Features.EncodeImpressionInto(vec, em.Impression)
				vecs = append(vecs, vec)
			}
		}
		if len(vecs) == 0 {
			b.Fatal("no encrypted impressions in the bench trace")
		}
		forest, binner := model.Forest, model.Binner
		flat := model.FlatForest()
		sink := 0.0

		b.Run("pointer", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sink += binner.Representative(forest.Predict(vecs[i%len(vecs)]))
			}
			_ = sink
		})
		b.Run("flat", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sink += model.EstimateCPM(vecs[i%len(vecs)])
			}
			_ = sink
		})
		b.Run("flat-batch", func(b *testing.B) {
			cls := make([]int, len(vecs))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				flat.PredictInto(cls, vecs)
			}
			b.StopTimer()
			for _, c := range cls {
				sink += binner.Representative(c)
			}
			_ = sink
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(vecs)), "ns/vec")
		})
	})
}

// --- Hot-path micro-benchmarks ---

func BenchmarkNURLParse(b *testing.B) {
	reg := nurl.Default()
	raw := "http://cpp.imp.mpx.mopub.com/imp?ad_domain=amazon.es&ads_creative_id=ID&" +
		"bid_price=0.99&bidder_name=dsp&charge_price=0.95&currency=USD&mopub_id=ID&pub_name=p"
	b.Run("span", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := reg.Parse(raw); !ok {
				b.Fatal("parse failed")
			}
		}
	})
	b.Run("neturl-reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := reg.ParseReference(raw); !ok {
				b.Fatal("parse failed")
			}
		}
	})
}

func BenchmarkNURLParseMiss(b *testing.B) {
	reg := nurl.Default()
	raw := "http://elpais.es/politica/articulo-largo.html?utm_source=x&utm_medium=y"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := reg.Parse(raw); ok {
			b.Fatal("false positive")
		}
	}
}

func BenchmarkPriceEncrypt(b *testing.B) {
	s := priceenc.MustNew([]byte("bench-enc-key-0123456789abcdef00"),
		[]byte("bench-sig-key-0123456789abcdef00"))
	iv := make([]byte, priceenc.IVSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Encrypt(1.84, iv); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPriceDecrypt(b *testing.B) {
	s := priceenc.MustNew([]byte("bench-enc-key-0123456789abcdef00"),
		[]byte("bench-sig-key-0123456789abcdef00"))
	iv := make([]byte, priceenc.IVSize)
	tok, err := s.Encrypt(1.84, iv)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Decrypt(tok); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAuction(b *testing.B) {
	eco := rtb.NewEcosystem(rtb.EcosystemConfig{Seed: 9})
	ctx := rtb.Context{
		City: 1, OS: 1, Device: 1, Origin: 1,
		Publisher: "bench.example", Category: 12,
		Slot: rtb.Slot300x250, UserValue: 1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eco.Serve(ctx, 6)
	}
}

func BenchmarkModelEstimate(b *testing.B) {
	s := quickStudy(b)
	imp := s.Analysis.Impressions[0]
	x := s.Model.Features.FromImpression(imp)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Model.EstimateCPM(x)
	}
}

func BenchmarkFeatureVector(b *testing.B) {
	s := quickStudy(b)
	imp := s.Analysis.Impressions[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Model.Features.FromImpression(imp)
	}
}

func BenchmarkClientProcess(b *testing.B) {
	s := quickStudy(b)
	client := core.NewClient(s.Model, s.Trace.Catalog.Directory())
	reqs := s.Trace.Requests
	if len(reqs) > 10000 {
		reqs = reqs[:10000]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		client.Process(reqs[i%len(reqs)])
	}
}

func BenchmarkAnalyzerFull(b *testing.B) {
	cfg := weblog.DefaultConfig().Scaled(0.01)
	cfg.Seed = 3
	trace := weblog.Generate(cfg)
	an := analyzer.New(trace.Catalog.Directory())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an.Analyze(trace.Requests)
	}
	b.StopTimer()
	b.ReportMetric(float64(len(trace.Requests)), "requests/op")
}

func BenchmarkTraceGeneration(b *testing.B) {
	cfg := weblog.DefaultConfig().Scaled(0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		weblog.Generate(cfg)
	}
}

func BenchmarkCampaignRun(b *testing.B) {
	eco := rtb.NewEcosystem(rtb.EcosystemConfig{Seed: 21})
	cat := weblog.NewCatalog(100, 50)
	eng := campaign.NewEngine(eco)
	setups := campaign.Grid(campaign.EncryptedADXs)[:12]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(campaign.Config{
			Setups: setups, ImpressionsPerSetup: 20,
			MaxBidCPM: 25, Catalog: cat, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPMETrain(b *testing.B) {
	s := quickStudy(b)
	records := s.A1.Records
	if len(records) > 2000 {
		records = records[:2000]
	}
	pme := core.NewPME(5)
	pme.ForestSize = 10
	pme.CVFolds, pme.CVRuns = 5, 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pme.Train(records, core.TrainConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}
