package yourandvalue

import (
	"fmt"
	"sort"

	"yourandvalue/internal/core"
	"yourandvalue/internal/stats"
)

// userTotals gathers the per-user cost decompositions as slices.
func (s *Study) userTotals() (clr, enc, total, corrected []float64) {
	shift := s.Model.TimeShift
	if shift <= 0 {
		shift = 1
	}
	ids := make([]int, 0, len(s.Costs))
	for id := range s.Costs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		uc := s.Costs[id]
		if uc.CleartextCount+uc.EncryptedCount == 0 {
			continue
		}
		clr = append(clr, uc.CleartextCPM)
		enc = append(enc, uc.EncryptedCPM)
		total = append(total, uc.TotalCPM())
		corrected = append(corrected, uc.CleartextCPM*shift+uc.EncryptedCPM)
	}
	return
}

// Figure17 reports the cumulative annual cost per user: the CDF rows plus
// the paper's headline statistics (median ≈25 CPM, 73% under 100 CPM, ~2%
// in the 1000–10000 band, ≈55% encrypted uplift).
func (s *Study) Figure17() *Table {
	t := &Table{
		ID:     "Figure 17",
		Title:  "Cumulative CPM paid per user over the year",
		Header: []string{"percentile", "cleartext", "cleartext (time corr.)", "est. encrypted", "total"},
	}
	clr, enc, total, corrected := s.userTotals()
	if len(total) == 0 {
		return t
	}
	for _, q := range []float64{0.10, 0.25, 0.50, 0.73, 0.90, 0.98, 0.999} {
		c, _ := stats.Quantile(clr, q)
		cc, _ := stats.Quantile(corrected, q)
		e, _ := stats.Quantile(enc, q)
		tt, _ := stats.Quantile(total, q)
		t.AddRowf(fmt.Sprintf("p%g", q*100), c, cc, e, tt)
	}
	med, _ := stats.Median(total)
	ecdf, _ := stats.NewECDF(total)
	under100 := ecdf.At(100)
	band := 0
	uplift := []float64{}
	upliftUsers := 0
	for i := range total {
		if total[i] >= 1000 && total[i] <= 10000 {
			band++
		}
		if enc[i] > 0 && clr[i] > 0 {
			upliftUsers++
			uplift = append(uplift, enc[i]/clr[i])
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"median user total = %s CPM (paper ≈25)", FormatCPM(med)))
	t.Notes = append(t.Notes, fmt.Sprintf(
		"%s of users under 100 CPM (paper ≈73%%)", FormatPct(under100)))
	t.Notes = append(t.Notes, fmt.Sprintf(
		"%s of users in the 1000-10000 CPM band (paper ≈2%%)",
		FormatPct(float64(band)/float64(len(total)))))
	if len(uplift) > 0 {
		mu, _ := stats.Mean(uplift)
		medAdd, _ := stats.Median(enc)
		t.AddRow("", "", "", "", "")
		t.Notes = append(t.Notes, fmt.Sprintf(
			"mean encrypted uplift over cleartext = %s across %d users (paper ≈55%% for ~60%% of users)",
			FormatPct(mu), upliftUsers))
		t.Notes = append(t.Notes, fmt.Sprintf(
			"median encrypted CPM added per user = %s (paper 14.3)", FormatCPM(medAdd)))
	}
	return t
}

// Figure18 relates each user's total cleartext cost to their total
// estimated encrypted cost (the paper's log-log scatter), reported as the
// population shares of the regions the paper calls out.
func (s *Study) Figure18() *Table {
	t := &Table{
		ID:     "Figure 18",
		Title:  "Total cleartext vs total estimated encrypted cost per user",
		Header: []string{"region", "users", "share"},
	}
	clr, enc, _, _ := s.userTotals()
	n := len(clr)
	if n == 0 {
		return t
	}
	similar, clrDom, encDom, enc2to32 := 0, 0, 0, 0
	for i := range clr {
		switch {
		case clr[i] == 0 && enc[i] == 0:
		case enc[i] <= clr[i]*1.25 && clr[i] <= enc[i]*1.25:
			similar++
		case clr[i] > enc[i]:
			clrDom++
		default:
			encDom++
			if clr[i] > 0 && enc[i] >= 2*clr[i] && enc[i] <= 32*clr[i] {
				enc2to32++
			}
		}
	}
	t.AddRow("similar cost (within 1.25x)", fmt.Sprint(similar), FormatPct(float64(similar)/float64(n)))
	t.AddRow("cleartext dominant", fmt.Sprint(clrDom), FormatPct(float64(clrDom)/float64(n)))
	t.AddRow("encrypted dominant", fmt.Sprint(encDom), FormatPct(float64(encDom)/float64(n)))
	t.AddRow("encrypted 2-32x cleartext", fmt.Sprint(enc2to32), FormatPct(float64(enc2to32)/float64(n)))
	t.Notes = append(t.Notes,
		"paper: ~20-25% similar, ~75% cleartext-dominant, ~2% encrypted 2-32x higher")
	return t
}

// Figure19 is the per-impression analogue of Figure 18: average cleartext
// vs average estimated encrypted price per user.
func (s *Study) Figure19() *Table {
	t := &Table{
		ID:     "Figure 19",
		Title:  "Average cleartext vs average estimated encrypted price per impression",
		Header: []string{"quantity", "value"},
	}
	var avgClr, avgEnc []float64
	enc5x := 0
	both := 0
	for _, uc := range s.Costs {
		ac, ae := uc.AvgCleartextCPM(), uc.AvgEncryptedCPM()
		if ac > 0 {
			avgClr = append(avgClr, ac)
		}
		if ae > 0 {
			avgEnc = append(avgEnc, ae)
		}
		if ac > 0 && ae > 0 {
			both++
			if ae >= 5*ac {
				enc5x++
			}
		}
	}
	mc, _ := stats.Median(avgClr)
	me, _ := stats.Median(avgEnc)
	t.AddRow("median avg cleartext CPM/impression", FormatCPM(mc))
	t.AddRow("median avg est. encrypted CPM/impression", FormatCPM(me))
	if both > 0 {
		t.AddRow("users with enc ≥5x clr per impression",
			FormatPct(float64(enc5x)/float64(both)))
	}
	if mc > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"encrypted/cleartext per-impression median ratio = %.2f (paper: enc higher; ~2%% of users ≥5x)",
			me/mc))
	}
	return t
}

// Section63 runs the validation extrapolation: observed per-user annual
// cost percentiles → estimated annual dollar value → ARPU comparison.
func (s *Study) Section63() *Table {
	t := &Table{
		ID:     "Section 6.3",
		Title:  "Validation: extrapolated annual user value vs published ARPU",
		Header: []string{"quantity", "value"},
	}
	_, _, total, _ := s.userTotals()
	if len(total) == 0 {
		return t
	}
	p25, _ := stats.Quantile(total, 0.25)
	p75, _ := stats.Quantile(total, 0.75)
	v := core.Validate(p25, p75)
	t.AddRow("25th percentile annual cost (CPM)", FormatCPM(v.P25CPM))
	t.AddRow("75th percentile annual cost (CPM)", FormatCPM(v.P75CPM))
	t.AddRow("extrapolated annual value (USD)",
		fmt.Sprintf("$%.2f - $%.2f", v.LowUSD, v.HighUSD))
	for _, ref := range core.ARPUReferences {
		t.AddRow("ARPU "+ref.Platform,
			fmt.Sprintf("$%.0f - $%.0f", ref.LowUSD, ref.HighUSD))
	}
	t.AddRow("same order of magnitude as ARPU", fmt.Sprint(v.SameOrderAsARPU))
	t.Notes = append(t.Notes,
		"paper: 8-102 CPM (25th-75th) extrapolates to $0.54-6.85 vs Twitter $7-8 / Facebook $14-17")
	return t
}

// BaselineComparison scores this work against the cleartext-equivalence
// baseline [62] using the generator's hidden ground truth: total encrypted
// spend per method vs truth.
func (s *Study) BaselineComparison() *Table {
	t := &Table{
		ID:     "Baseline",
		Title:  "YourAdValue vs cleartext-equivalence baseline (vs hidden ground truth)",
		Header: []string{"method", "per-impression median CPM", "median err", "total CPM"},
	}
	// Ground truth for the encrypted impressions, from the generator.
	var truthPrices []float64
	truthTotal := 0.0
	for _, it := range s.Trace.Impressions {
		if it.Encrypted {
			truthPrices = append(truthPrices, it.ChargeCPM)
			truthTotal += it.ChargeCPM
		}
	}
	if len(truthPrices) == 0 {
		return t
	}
	truthMed, _ := stats.Median(truthPrices)

	// Ours: per-impression model estimates. The model prices in
	// campaign-era (2016) terms; scoring against the 2015 trace divides
	// out the time-shift coefficient (the inverse of the §6.2 correction).
	shift := s.Model.TimeShift
	if shift <= 0 {
		shift = 1
	}
	var ourPrices []float64
	ourTotal := 0.0
	for _, imp := range s.Analysis.Impressions {
		if !imp.Encrypted() {
			continue
		}
		v := core.EstimateImpression(s.Model, imp) / shift
		ourPrices = append(ourPrices, v)
		ourTotal += v
	}
	ourMed, _ := stats.Median(ourPrices)

	// Baseline [62]: every encrypted impression estimated at the dataset
	// cleartext mean (their working assumption).
	baseEst := s.Baseline.MeanCleartextCPM
	baseTotal := float64(len(truthPrices)) * baseEst

	abs := func(v float64) float64 {
		if v < 0 {
			return -v
		}
		return v
	}
	t.AddRow("ground truth (hidden)", FormatCPM(truthMed), "-", FormatCPM(truthTotal))
	t.AddRow("YourAdValue (time-shifted)", FormatCPM(ourMed),
		FormatCPM(abs(ourMed-truthMed)), FormatCPM(ourTotal))
	t.AddRow("baseline [62] (clr mean)", FormatCPM(baseEst),
		FormatCPM(abs(baseEst-truthMed)), FormatCPM(baseTotal))
	t.Notes = append(t.Notes,
		"paper: the [62] assumption fails — encrypted prices are ≈1.7x cleartext",
		"totals under-run truth for both methods: campaign probes cannot observe the heavy per-user value tail (whales)")
	return t
}

// All runs every experiment generator and returns the tables in paper
// order. Expensive generators take their knobs from the study config.
func (s *Study) All() ([]*Table, error) {
	tables := []*Table{
		s.Table1(), s.Figure2(), s.Figure3(), s.Table3(),
		s.Figure5(), s.Figure6(), s.Figure7(), s.Figure8(), s.Figure9(),
		s.Figure10(), s.Figure11(), s.Figure12(), s.Figure13(), s.Figure14(),
		s.Section44(),
	}
	if red, err := s.Section51(4000); err == nil {
		tables = append(tables, red)
	} else {
		return nil, err
	}
	tables = append(tables, s.Table5Section52(), s.Figure15(), s.Section54(), s.Figure16())
	tables = append(tables, s.Figure17(), s.Figure18(), s.Figure19(), s.Section63(), s.BaselineComparison())
	return tables, nil
}
